package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"dssddi"
)

var (
	sysBOnce sync.Once
	testSysB *dssddi.System
)

// systemB trains a second model over the SAME cohort as system(t) but
// with a different parameter seed — a genuinely different epoch whose
// scores diverge from system(t)'s, for the hot-reload tests.
func systemB(t testing.TB) *dssddi.System {
	t.Helper()
	sysBOnce.Do(func() {
		data := dssddi.GenerateChronic(11, 50, 40)
		cfg := dssddi.DefaultConfig()
		cfg.DDIEpochs = 15
		cfg.MDEpochs = 25
		cfg.Hidden = 16
		cfg.Seed = 7
		sys := dssddi.New(cfg)
		if err := sys.Train(data); err != nil {
			panic(err)
		}
		testSysB = sys
	})
	if testSysB == nil {
		t.Fatal("second test system failed to train")
	}
	return testSysB
}

// TestHotReloadEndpoint drives the snapshot file reload path: save a
// model, boot a server on it, reload via /v1/admin/reload, and verify
// the epoch moved, registered patients survived (re-embedded), and
// responses still match the library bitwise.
func TestHotReloadEndpoint(t *testing.T) {
	sys := system(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sysFromSnap, err := dssddi.Load(loaded)
	loaded.Close()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sysFromSnap, Config{SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// Register a patient pre-reload.
	if resp, body := do(t, http.MethodPut, ts.URL+"/v1/patients/bob", PatientPutRequest{Regimen: []int{1, 3}}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("initial epoch %d, want 1", got)
	}

	// Reload with an empty body — uses the configured SnapshotPath.
	resp, body := post(t, ts.URL+"/v1/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, body)
	}
	var rr ReloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Epoch != 2 || s.Epoch() != 2 {
		t.Fatalf("epoch after reload: response %d, server %d, want 2", rr.Epoch, s.Epoch())
	}

	// The registered patient was re-embedded against the new epoch and
	// still serves, with the X-Epoch header naming epoch 2.
	resp, body = post(t, ts.URL+"/v1/suggest", SuggestRequest{PatientID: "bob", K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload suggest: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Epoch") != "2" {
		t.Fatalf("X-Epoch %q, want 2", resp.Header.Get("X-Epoch"))
	}
	var got SuggestResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := sysFromSnap.SuggestFor(dssddi.PatientProfile{Regimen: []int{1, 3}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSuggestions(got.Suggestions, want) {
		t.Fatalf("post-reload registered suggest diverged: %s", body)
	}

	// A garbage snapshot path fails loudly and leaves the epoch alone.
	bad := filepath.Join(dir, "bad.snap")
	os.WriteFile(bad, []byte("not a snapshot"), 0o644)
	resp, _ = post(t, ts.URL+"/v1/admin/reload", ReloadRequest{Path: bad})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("bad snapshot reload: %d, want 500", resp.StatusCode)
	}
	if s.Epoch() != 2 {
		t.Fatalf("failed reload moved the epoch to %d", s.Epoch())
	}

	var health HealthResponse
	_, body = get(t, ts.URL+"/healthz")
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Epoch != 2 || health.Reloads != 1 || health.Patients != 1 {
		t.Fatalf("healthz after reload: %s", body)
	}
}

// TestReloadHammer is the acceptance-critical zero-downtime test (run
// with -race): concurrent registry writes, hot reloads and suggests —
// by dataset index and registered id — where every response must be
// 2xx and bitwise consistent with exactly the model epoch named in its
// X-Epoch header; no request is dropped and no response mixes epochs.
func TestReloadHammer(t *testing.T) {
	sysA, sysB := system(t), systemB(t)
	s, err := New(sysA, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	// Two regimen versions per registered patient; writers flip
	// between them while readers suggest.
	regimens := [][]int{{0, 2, 5}, {1, 4}}
	const regPatients = 3
	for i := 0; i < regPatients; i++ {
		id := fmt.Sprintf("hammer-%d", i)
		if resp, body := do(t, http.MethodPut, ts.URL+"/v1/patients/"+id, PatientPutRequest{Regimen: regimens[0]}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %s: %d %s", id, resp.StatusCode, body)
		}
	}

	// Ground truth per (epoch system, patient/k) and per (epoch
	// system, regimen version).
	const k = 4
	systems := []*dssddi.System{sysA, sysB}
	indexPatients := sysA.Data().TestPatients()[:4]
	wantIndex := make([]map[int][]dssddi.Suggestion, 2)
	wantReg := make([][][]dssddi.Suggestion, 2)
	for si, sys := range systems {
		wantIndex[si] = make(map[int][]dssddi.Suggestion, len(indexPatients))
		for _, p := range indexPatients {
			sg, err := sys.Suggest(p, k)
			if err != nil {
				t.Fatal(err)
			}
			wantIndex[si][p] = sg
		}
		wantReg[si] = make([][]dssddi.Suggestion, len(regimens))
		for ri, reg := range regimens {
			sg, err := sys.SuggestFor(dssddi.PatientProfile{Regimen: reg}, k)
			if err != nil {
				t.Fatal(err)
			}
			wantReg[si][ri] = sg
		}
	}

	// epochSys records which system each published epoch serves; the
	// reloader fills it before the epoch becomes visible.
	var epochSys sync.Map // epoch id -> index into systems
	epochSys.Store(int64(1), 0)
	sysOf := func(epochHeader string) (int, error) {
		id, err := strconv.ParseInt(epochHeader, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad X-Epoch %q: %v", epochHeader, err)
		}
		v, ok := epochSys.Load(id)
		if !ok {
			return 0, fmt.Errorf("response on unknown epoch %d", id)
		}
		return v.(int), nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Reloader: swap A->B->A->... Swap publishes the pointer only
	// after the registry is re-embedded, and epochSys is filled before
	// Swap returns the id to anyone — store under the same lock-free
	// discipline: record both candidate ids' systems up front is not
	// possible (ids are allocated inside Swap), so the reloader stores
	// the mapping immediately after Swap and readers tolerate a short
	// unknown window by retrying the lookup once the store lands.
	// Simpler and airtight: readers only ever see epochs the reloader
	// has already stored, because Swap is called by the reloader
	// goroutine and the store happens before the next reader can
	// observe the new epoch — guaranteed by storing BEFORE unblocking:
	// we pre-announce the upcoming epoch id (ids are sequential).
	const reloadCount = 6
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloadCount; i++ {
			next := 1 - (i % 2) // first swap installs sysB (index 1)
			// Epoch ids are sequential: announce id i+2 before it goes
			// live so no reader can see an unmapped epoch.
			epochSys.Store(int64(i+2), next)
			if _, err := s.Swap(systems[next]); err != nil {
				fail(fmt.Errorf("swap %d: %v", i, err))
				return
			}
		}
	}()

	// Registry writers: flip regimens.
	for wtr := 0; wtr < 2; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				id := fmt.Sprintf("hammer-%d", (wtr+it)%regPatients)
				reg := regimens[it%2]
				r, b := doQuiet(http.MethodPut, ts.URL+"/v1/patients/"+id, PatientPutRequest{Regimen: reg})
				if r == nil || r.StatusCode != http.StatusOK && r.StatusCode != http.StatusCreated {
					fail(fmt.Errorf("writer %d: PUT %s failed: %v %s", wtr, id, r, b))
					return
				}
			}
		}(wtr)
	}

	// Index readers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				p := indexPatients[(g+it)%len(indexPatients)]
				resp, body := postQuiet(ts.URL+"/v1/suggest", SuggestRequest{Patient: p, K: k})
				if resp == nil || resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("index reader: dropped/failed request for %d: %v %s", p, resp, body))
					return
				}
				si, err := sysOf(resp.Header.Get("X-Epoch"))
				if err != nil {
					fail(err)
					return
				}
				var got SuggestResponse
				if err := json.Unmarshal(body, &got); err != nil {
					fail(err)
					return
				}
				if !sameSuggestions(got.Suggestions, wantIndex[si][p]) {
					fail(fmt.Errorf("index response for %d not bitwise consistent with its epoch's model: %s", p, body))
					return
				}
			}
		}(g)
	}

	// Registry readers: the response must match one regimen version
	// under the epoch it was served from.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 25; it++ {
				id := fmt.Sprintf("hammer-%d", (g+it)%regPatients)
				resp, body := postQuiet(ts.URL+"/v1/suggest", SuggestRequest{PatientID: id, K: k})
				if resp == nil || resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("registry reader: dropped/failed request for %s: %v %s", id, resp, body))
					return
				}
				si, err := sysOf(resp.Header.Get("X-Epoch"))
				if err != nil {
					fail(err)
					return
				}
				var got SuggestResponse
				if err := json.Unmarshal(body, &got); err != nil {
					fail(err)
					return
				}
				if !sameSuggestions(got.Suggestions, wantReg[si][0]) && !sameSuggestions(got.Suggestions, wantReg[si][1]) {
					fail(fmt.Errorf("registry response for %s matches neither regimen under its epoch: %s", id, body))
					return
				}
			}
		}(g)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.reloads.Load(); got != reloadCount {
		t.Fatalf("reload count %d, want %d", got, reloadCount)
	}
}

// doQuiet is do without *testing.T (for goroutines).
func doQuiet(method, url string, body any) (*http.Response, []byte) {
	buf, _ := json.Marshal(body)
	req, err := http.NewRequest(method, url, bytes.NewReader(buf))
	if err != nil {
		return nil, nil
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

package serve

import (
	"errors"
	"net/http"

	"dssddi/internal/regproto"
)

// Replication endpoints. The router is the only intended caller: it
// fans acknowledged registry mutations out to replica backends via
// /apply, compares per-shard digests via /digest when deciding whether
// a recovering backend has reconverged, and pulls record batches via
// /sync to reconcile a backend that missed writes while ejected.
//
//	POST /v1/admin/registry/apply    apply replicated records (version-gated)
//	GET  /v1/admin/registry/digest   per-shard SHA-256 digests of the registry
//	POST /v1/admin/registry/sync     read records by shard / id for reconciliation
//
// All three are idempotent: /apply installs a record only when its
// version is newer than the local copy (last-writer-wins), so
// re-delivered fan-outs and overlapping anti-entropy rounds converge
// instead of flapping.

func (s *Server) handleRegistryApply(w http.ResponseWriter, r *http.Request, ep *servingEpoch) int {
	var req regproto.ApplyRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	if len(req.Records) == 0 {
		return badRequest(w, "records must be non-empty")
	}
	for _, rec := range req.Records {
		if err := validPatientID(rec.ID); err != nil {
			return badRequest(w, "invalid record: %v", err)
		}
		if rec.Version == 0 {
			return badRequest(w, "record %q carries version 0; replicated records are versioned from 1", rec.ID)
		}
	}
	resp := regproto.ApplyResponse{Results: make([]regproto.ApplyResult, 0, len(req.Records))}
	for _, rec := range req.Records {
		applied, version, err := s.patients.applyReplica(ep, rec)
		if err != nil {
			if errors.Is(err, errDurability) {
				return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			}
			return badRequest(w, "record %q: %v", rec.ID, err)
		}
		if applied {
			resp.Applied++
		} else {
			resp.Stale++
		}
		resp.Results = append(resp.Results, regproto.ApplyResult{ID: rec.ID, Applied: applied, Version: version})
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRegistryDigest(w http.ResponseWriter, _ *http.Request, _ *servingEpoch) int {
	return writeJSON(w, http.StatusOK, regproto.DigestResponse{
		Records: s.patients.len(),
		Shards:  regproto.DigestShards(s.patients.records()),
	})
}

func (s *Server) handleRegistrySync(w http.ResponseWriter, r *http.Request, _ *servingEpoch) int {
	var req regproto.SyncRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	for _, sh := range req.Shards {
		if sh < 0 || sh >= regproto.Shards {
			return badRequest(w, "shard %d out of range [0, %d)", sh, regproto.Shards)
		}
	}
	recs := s.patients.recordsFor(req)
	if recs == nil {
		recs = []regproto.Record{}
	}
	return writeJSON(w, http.StatusOK, regproto.SyncResponse{Records: recs})
}

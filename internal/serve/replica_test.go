package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"dssddi/internal/regproto"
)

// doReplicate issues a mutation with the X-Replicate header set, the
// way the router does, and returns the decoded response.
func doReplicate(t *testing.T, method, url string, body any) (*http.Response, PatientResponse) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(regproto.ReplicateHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var pr PatientResponse
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(out, &pr); err != nil {
			t.Fatalf("decoding %s: %v", out, err)
		}
	}
	return resp, pr
}

// TestReplicateEchoAndVersions: mutations carry monotonically
// increasing per-record versions, and an X-Replicate caller gets the
// canonical record echoed back — tombstone included on delete — so the
// router can fan it out without a second round trip.
func TestReplicateEchoAndVersions(t *testing.T) {
	system(t)
	_, ts := newTestServer(t, Config{})

	resp, pr := doReplicate(t, http.MethodPut, ts.URL+"/v1/patients/echo", PatientPutRequest{Regimen: []int{0, 2}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if pr.Version != 1 || pr.Record == nil || pr.Record.Version != 1 || pr.Record.Deleted {
		t.Fatalf("create echo = version %d record %+v, want version 1 live record", pr.Version, pr.Record)
	}
	resp, pr = doReplicate(t, http.MethodPut, ts.URL+"/v1/patients/echo", PatientPutRequest{Regimen: []int{5}})
	if resp.StatusCode != http.StatusOK || pr.Version != 2 || pr.Record == nil || len(pr.Record.Regimen) != 1 {
		t.Fatalf("replace echo = status %d version %d record %+v, want version 2 with new regimen", resp.StatusCode, pr.Version, pr.Record)
	}
	resp, pr = doReplicate(t, http.MethodDelete, ts.URL+"/v1/patients/echo", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if pr.Version != 3 || pr.Record == nil || !pr.Record.Deleted || pr.Record.Version != 3 {
		t.Fatalf("delete echo = version %d record %+v, want version-3 tombstone", pr.Version, pr.Record)
	}

	// Without the header the record is not echoed: plain clients do not
	// see replication internals.
	resp, body := do(t, http.MethodPut, ts.URL+"/v1/patients/plain", PatientPutRequest{Regimen: []int{1}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("plain create: status %d", resp.StatusCode)
	}
	if bytes.Contains(body, []byte(`"record"`)) {
		t.Fatalf("plain mutation leaks the replication record: %s", body)
	}
}

// TestReplicaApplyVersionGate: /v1/admin/registry/apply installs
// strictly-newer records and refuses stale ones, reporting the locally
// held version either way. A stale set must not resurrect a newer
// tombstone.
func TestReplicaApplyVersionGate(t *testing.T) {
	system(t)
	_, ts := newTestServer(t, Config{})

	apply := func(recs ...regproto.Record) regproto.ApplyResponse {
		t.Helper()
		resp, body := post(t, ts.URL+"/v1/admin/registry/apply", regproto.ApplyRequest{Records: recs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("apply: status %d: %s", resp.StatusCode, body)
		}
		var ar regproto.ApplyResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		return ar
	}

	// A replicated record at version 5 installs and serves.
	ar := apply(regproto.Record{ID: "gate", Version: 5, Regimen: []int{0, 3}})
	if ar.Applied != 1 || ar.Stale != 0 {
		t.Fatalf("fresh apply = %+v, want 1 applied", ar)
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/patients/gate", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("applied record must serve, got %d", resp.StatusCode)
	}

	// Version 3 arriving late is stale: refused, local version reported.
	ar = apply(regproto.Record{ID: "gate", Version: 3, Regimen: []int{9}})
	if ar.Applied != 0 || ar.Stale != 1 || len(ar.Results) != 1 || ar.Results[0].Version != 5 {
		t.Fatalf("stale apply = %+v, want refused at local version 5", ar)
	}

	// A version-6 tombstone wins over the live record...
	ar = apply(regproto.Record{ID: "gate", Version: 6, Deleted: true})
	if ar.Applied != 1 {
		t.Fatalf("tombstone apply = %+v, want applied", ar)
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/patients/gate", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("tombstoned record must 404, got %d", resp.StatusCode)
	}
	// ...and a stale version-4 set cannot resurrect it.
	ar = apply(regproto.Record{ID: "gate", Version: 4, Regimen: []int{1}})
	if ar.Applied != 0 || ar.Stale != 1 {
		t.Fatalf("resurrection apply = %+v, want refused", ar)
	}
	if resp, _ := do(t, http.MethodGet, ts.URL+"/v1/patients/gate", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("tombstone must hold against stale set, got %d", resp.StatusCode)
	}

	// Malformed records are rejected wholesale.
	if resp, _ := post(t, ts.URL+"/v1/admin/registry/apply", regproto.ApplyRequest{Records: []regproto.Record{{ID: "bad id!", Version: 1}}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id must 400, got %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/admin/registry/apply", regproto.ApplyRequest{Records: []regproto.Record{{ID: "zero", Version: 0, Regimen: []int{0}}}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("version-0 record must 400, got %d", resp.StatusCode)
	}
}

// TestRegistryDigestSyncRoundTrip: the digest endpoint summarizes
// shard state, sync pulls the records behind it, and replaying those
// records into an empty peer through apply reproduces byte-identical
// digests — the anti-entropy loop in miniature.
func TestRegistryDigestSyncRoundTrip(t *testing.T) {
	system(t)
	_, ts := newTestServer(t, Config{})
	_, ts2 := newTestServer(t, Config{})

	ids := []string{"rt-a", "rt-b", "rt-c", "rt-d", "rt-e"}
	for i, id := range ids {
		if resp, _ := doReplicate(t, http.MethodPut, ts.URL+"/v1/patients/"+id, PatientPutRequest{Regimen: []int{i, i + 1}}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("seed %s: status %d", id, resp.StatusCode)
		}
	}
	// One tombstone so the round trip carries deletes too.
	if resp, _ := doReplicate(t, http.MethodDelete, ts.URL+"/v1/patients/rt-c", nil); resp.StatusCode != http.StatusOK {
		t.Fatal("seed delete failed")
	}

	resp, body := do(t, http.MethodGet, ts.URL+"/v1/admin/registry/digest", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("digest: status %d", resp.StatusCode)
	}
	var dig regproto.DigestResponse
	if err := json.Unmarshal(body, &dig); err != nil {
		t.Fatal(err)
	}
	if dig.Records != 4 || len(dig.Shards) != regproto.Shards {
		t.Fatalf("digest = %d live records / %d shards, want 4 / %d", dig.Records, len(dig.Shards), regproto.Shards)
	}

	// Sync with no filter pulls everything, tombstone included.
	resp, body = post(t, ts.URL+"/v1/admin/registry/sync", regproto.SyncRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync: status %d", resp.StatusCode)
	}
	var sr regproto.SyncResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Records) != len(ids) {
		t.Fatalf("sync returned %d records, want %d (tombstone included)", len(sr.Records), len(ids))
	}
	tombstones := 0
	for _, r := range sr.Records {
		if r.Deleted {
			tombstones++
		}
	}
	if tombstones != 1 {
		t.Fatalf("sync carried %d tombstones, want 1", tombstones)
	}

	// Sync by id and by shard agree with the full pull.
	resp, body = post(t, ts.URL+"/v1/admin/registry/sync", regproto.SyncRequest{IDs: []string{"rt-a", "rt-c"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("sync by id failed")
	}
	var byID regproto.SyncResponse
	if err := json.Unmarshal(body, &byID); err != nil {
		t.Fatal(err)
	}
	if len(byID.Records) != 2 {
		t.Fatalf("sync by id returned %d records, want 2", len(byID.Records))
	}
	shard := regproto.ShardOf("rt-a")
	resp, body = post(t, ts.URL+"/v1/admin/registry/sync", regproto.SyncRequest{Shards: []int{shard}})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("sync by shard failed")
	}
	var byShard regproto.SyncResponse
	if err := json.Unmarshal(body, &byShard); err != nil {
		t.Fatal(err)
	}
	for _, r := range byShard.Records {
		if regproto.ShardOf(r.ID) != shard {
			t.Fatalf("shard sync leaked record %s from shard %d", r.ID, regproto.ShardOf(r.ID))
		}
	}
	if resp, _ := post(t, ts.URL+"/v1/admin/registry/sync", regproto.SyncRequest{Shards: []int{regproto.Shards}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range shard must 400, got %d", resp.StatusCode)
	}

	// Replay the full pull into an empty peer: digests converge
	// byte-for-byte, shard for shard.
	resp, _ = post(t, ts2.URL+"/v1/admin/registry/apply", regproto.ApplyRequest{Records: sr.Records})
	if resp.StatusCode != http.StatusOK {
		t.Fatal("peer apply failed")
	}
	resp, body = do(t, http.MethodGet, ts2.URL+"/v1/admin/registry/digest", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("peer digest failed")
	}
	var dig2 regproto.DigestResponse
	if err := json.Unmarshal(body, &dig2); err != nil {
		t.Fatal(err)
	}
	for i := range dig.Shards {
		if dig.Shards[i] != dig2.Shards[i] {
			t.Fatalf("shard %d digests diverge after replay:\n  source: %+v\n  peer:   %+v", i, dig.Shards[i], dig2.Shards[i])
		}
	}
}

// Package serve wraps a trained (typically snapshot-loaded)
// dssddi.System in a concurrent HTTP JSON API — the decision-support
// service the paper positions DSSDDI as. The model is immutable, but
// the serving state is generational: a hot reload builds a complete
// new epoch (system, batcher, caches, alerts) in the background and
// swaps one atomic pointer, so the model can be replaced with zero
// downtime — in-flight requests finish on the epoch they started
// with, and no request ever observes a half-loaded model.
//
// Endpoints:
//
//	POST   /v1/suggest          rank top-k drugs for a patient (dataset
//	                            index or registered id), with alerts
//	POST   /v1/scores           raw score rows for a set of patients
//	POST   /v1/explain          MS-module explanation for a drug set or patient
//	POST   /v1/alerts           severity-tiered DDI screening of a drug list
//	PUT    /v1/patients/{id}    register or replace a patient profile
//	PATCH  /v1/patients/{id}    update a registered regimen / features
//	GET    /v1/patients/{id}    read a registered profile
//	DELETE /v1/patients/{id}    remove a registered patient
//	POST   /v1/admin/reload     hot-swap the model from a snapshot file
//	GET    /healthz             liveness + model identity + epoch
//	GET    /metricsz            latency, cache, batching, registry counters
//
// Registered patients score through the inductive path: their
// embedding is computed on write, cached, and recomputed against the
// new model on hot reload, so an edited regimen is live on the next
// request. Malformed input is 400; a well-formed but unknown patient
// (index beyond the cohort, unregistered id) is 404.
//
// Concurrent /v1/suggest requests are coalesced by a micro-batching
// scorer into single score-matrix calls, and per-patient results are
// cached in a sharded LRU; both are response-invariant (bitwise) and
// exist purely for throughput. Every scoring response carries an
// X-Epoch header naming the epoch that produced it.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dssddi"
	"dssddi/internal/alerts"
	"dssddi/internal/obs"
	"dssddi/internal/regproto"
)

var errServerClosed = errors.New("serve: server is shutting down")

// Config tunes the serving layer. The zero value gets sensible
// defaults from fill.
type Config struct {
	// MaxBatch bounds the patients coalesced into one score-matrix
	// call (default 64).
	MaxBatch int
	// BatchWindow is how long a lone request waits for company before
	// being scored solo. The zero value batches opportunistically —
	// coalescing whatever is already queued without ever waiting — so
	// idle-server latency is never inflated; set a small positive
	// window (e.g. 1ms) to trade lone-request latency for bigger
	// batches under bursty load.
	BatchWindow time.Duration
	// CacheSize is the total entries across the suggest and explain
	// result caches (default 4096; negative disables caching).
	CacheSize int
	// CacheShards spreads cache locking (default 16).
	CacheShards int
	// DefaultK is the suggestion list length when a request omits k
	// (default 4, the paper's headline cut-off).
	DefaultK int
	// MaxK caps requested list lengths (default: number of drugs).
	MaxK int
	// MaxScoreBatch caps the patients per /v1/scores request
	// (default 256).
	MaxScoreBatch int
	// SnapshotPath is the default snapshot file /v1/admin/reload (and
	// the SIGHUP / -watch wiring) reloads when a request names no
	// path. Empty leaves path-less reloads disabled.
	SnapshotPath string
	// Precision is the serving precision of the scoring engine: "f64"
	// (default, the accuracy oracle), "f32" (float32 SIMD path, ~half
	// the resident model and registry-embedding bytes) or
	// "int8-experimental". Applied to the booted system and to every
	// hot-reloaded one, unless a reload request overrides it.
	Precision string

	// WALPath enables the durable patient registry: every mutation is
	// write-ahead-logged to this file before it is acknowledged, and
	// the registry is rebuilt from checkpoint + log on boot. Empty
	// keeps the registry RAM-only.
	WALPath string
	// WALSync is the fsync policy: "always" (every acknowledged write
	// survives power loss), "interval" (default; bounded loss on power
	// failure, none on process crash) or "off".
	WALSync string
	// WALSyncInterval is the flush cadence under "interval"
	// (default 100ms).
	WALSyncInterval time.Duration
	// CheckpointPath is the registry checkpoint file (default
	// WALPath + ".ckpt").
	CheckpointPath string
	// CheckpointEvery is how many logged mutations trigger an
	// automatic checkpoint + log truncation (default 1024; negative
	// disables automatic compaction).
	CheckpointEvery int

	// TraceSample is the fraction of requests recorded into the
	// /debug/tracez rings (0 = tracing off, 1 = every request,
	// 0 < s < 1 = every round(1/s)-th). Un-sampled requests carry a nil
	// trace and pay nothing on the hot path.
	TraceSample float64
	// TraceRing is the capacity of each tracez ring — recent, slowest,
	// errored (default obs.DefaultTraceRing).
	TraceRing int
	// SlowMs, when positive, logs a warning for every request slower
	// than this many milliseconds (requires Logger).
	SlowMs int
	// Logger, when non-nil, receives structured access and event logs.
	// Per-request access lines are emitted at debug level; slow
	// requests, sheds and reloads at warn/info.
	Logger *slog.Logger

	// MaxInflight bounds concurrently executing requests per scoring
	// endpoint (suggest, scores, explain, alerts, patients); beyond it
	// requests wait in a bounded queue and past that they are shed
	// with an immediate 503 + Retry-After. Default 256; negative
	// disables admission control. healthz/metricsz/reload are never
	// limited, so probes and operators retain access under overload.
	MaxInflight int
	// MaxQueue bounds the per-endpoint wait queue (default 512).
	MaxQueue int
}

func (c *Config) fill(drugs int) {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 4
	}
	if c.MaxK <= 0 || c.MaxK > drugs {
		c.MaxK = drugs
	}
	if c.MaxScoreBatch <= 0 {
		c.MaxScoreBatch = 256
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1024
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 256
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 512
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
}

// Server is the HTTP serving layer: an atomic pointer to the current
// serving epoch plus the epoch-independent patient registry and
// metrics.
type Server struct {
	cfg      Config
	metrics  *registry
	patients *patientRegistry
	start    time.Time
	tracer   *obs.Tracer
	logger   *slog.Logger

	// limits holds the per-endpoint admission limiters (nil entries
	// mean unlimited); deadlineTimeouts counts requests answered 504
	// because a propagated deadline expired.
	limits           map[string]*limiter
	deadlineTimeouts atomic.Int64

	epoch    atomic.Pointer[servingEpoch]
	epochSeq atomic.Int64
	reloads  atomic.Int64
	reloadMu sync.Mutex // serializes Swap / reload

	// precision is the serving precision applied to newly built epochs.
	// Written at New and — under reloadMu — when a reload request names
	// a different one; requests read the immutable copy on their pinned
	// epoch, never this field.
	precision string
}

// New builds a server over a trained system. It fails on an untrained
// system (nothing to serve) — load a snapshot or call Train first.
func New(sys *dssddi.System, cfg Config) (*Server, error) {
	data := sys.Data()
	if data == nil {
		return nil, fmt.Errorf("serve: system is not trained")
	}
	cfg.fill(data.NumDrugs())
	s := &Server{
		cfg:      cfg,
		metrics:  newRegistry("suggest", "scores", "explain", "alerts", "patients", "registry", "reload", "healthz", "metricsz"),
		patients: newPatientRegistry(),
		start:    time.Now(),
		tracer:   obs.NewTracer(cfg.TraceSample, cfg.TraceRing),
		logger:   cfg.Logger,
	}
	s.limits = make(map[string]*limiter, 5)
	for _, name := range []string{"suggest", "scores", "explain", "alerts", "patients"} {
		s.limits[name] = newLimiter(cfg.MaxInflight, cfg.MaxQueue)
	}
	if err := dssddi.ValidatePrecision(cfg.Precision); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s.precision = cfg.Precision
	ep, err := s.newEpoch(sys, cfg.Precision)
	if err != nil {
		return nil, err
	}
	if cfg.WALPath != "" {
		store, profiles, derr := openDurableStore(s.cfg)
		if derr != nil {
			ep.unref()
			return nil, derr
		}
		s.patients.installRecovered(profiles)
		s.patients.store = store
		if len(profiles) > 0 {
			// Recovered profiles re-embed against the booted model the
			// same way a hot reload re-embeds the live registry: every
			// recovered patient is scoring-ready before the first
			// request.
			s.patients.reembedAll(ep)
		}
	}
	s.epoch.Store(ep)
	return s, nil
}

// Close retires the current epoch; its batching collector stops once
// the last in-flight request completes. Subsequent requests get 503.
// reloadMu excludes a concurrent Swap from republishing an epoch (and
// leaking its batcher) after the close. With a durable registry, Close
// also writes a final checkpoint and fsync-closes the WAL, so a clean
// shutdown restarts from the checkpoint alone with an empty log.
func (s *Server) Close() {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if ep := s.epoch.Swap(nil); ep != nil {
		ep.unref()
	}
	if st := s.patients.store; st != nil {
		if err := st.shutdown(s.patients); err != nil {
			fmt.Fprintf(os.Stderr, "serve: closing durable registry: %v\n", err)
		}
	}
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/suggest", s.instrument("suggest", http.MethodPost, s.handleSuggest))
	mux.HandleFunc("/v1/scores", s.instrument("scores", http.MethodPost, s.handleScores))
	mux.HandleFunc("/v1/explain", s.instrument("explain", http.MethodPost, s.handleExplain))
	mux.HandleFunc("/v1/alerts", s.instrument("alerts", http.MethodPost, s.handleAlerts))
	mux.HandleFunc("PUT /v1/patients/{id}", s.instrument("patients", http.MethodPut, s.handlePatientPut))
	mux.HandleFunc("PATCH /v1/patients/{id}", s.instrument("patients", http.MethodPatch, s.handlePatientPatch))
	mux.HandleFunc("GET /v1/patients/{id}", s.instrument("patients", http.MethodGet, s.handlePatientGet))
	mux.HandleFunc("DELETE /v1/patients/{id}", s.instrument("patients", http.MethodDelete, s.handlePatientDelete))
	mux.HandleFunc("/v1/admin/reload", s.instrument("reload", http.MethodPost, s.handleReload))
	mux.HandleFunc("/v1/admin/registry/apply", s.instrument("registry", http.MethodPost, s.handleRegistryApply))
	mux.HandleFunc("/v1/admin/registry/digest", s.instrument("registry", http.MethodGet, s.handleRegistryDigest))
	mux.HandleFunc("/v1/admin/registry/sync", s.instrument("registry", http.MethodPost, s.handleRegistrySync))
	mux.HandleFunc("/healthz", s.instrument("healthz", http.MethodGet, s.handleHealthz))
	mux.HandleFunc("/metricsz", s.instrument("metricsz", http.MethodGet, s.handleMetricsz))
	mux.Handle("/debug/tracez", s.tracer.Handler("dssddi-serve"))
	return mux
}

// Tracer exposes the server's trace rings (tests and the router's
// in-process harness look up traces by request id through it).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// instrument wraps a handler with method enforcement, deadline
// derivation, admission control, epoch acquisition, timing and error
// counting. Order matters: a request is shed or rejected as expired
// BEFORE it pins an epoch or touches the batcher, so overload and
// dead-on-arrival requests cost a few channel operations, not scoring
// capacity. The epoch is pinned for the whole request — model,
// batcher, caches and alerts all come from it — and named in the
// X-Epoch response header.
func (s *Server) instrument(name, method string, h func(http.ResponseWriter, *http.Request, *servingEpoch) int) http.HandlerFunc {
	stats := s.metrics.get(name)
	lim := s.limits[name] // nil for unlimited endpoints
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rid := obs.EnsureRequestID(r.Header)
		w.Header().Set(obs.RequestIDHeader, rid)
		tr := s.tracer.Start(rid, r.URL.Path)
		var status int
		if r.Method != method {
			status = http.StatusMethodNotAllowed
			writeJSON(w, status, apiError{Error: fmt.Sprintf("method %s not allowed; use %s", r.Method, method)})
		} else {
			status = s.serveAdmitted(w, r, lim, tr, h)
		}
		dur := time.Since(t0)
		stats.observe(dur, status >= 400)
		s.tracer.Finish(tr, status)
		s.logRequest(r, rid, name, status, dur)
	}
}

// logRequest emits the structured access log for one finished
// request: every request at debug level, plus a warn line for
// requests slower than -slow-ms. A nil logger silences both.
func (s *Server) logRequest(r *http.Request, rid, endpoint string, status int, dur time.Duration) {
	if s.logger == nil {
		return
	}
	if s.cfg.SlowMs > 0 && dur >= time.Duration(s.cfg.SlowMs)*time.Millisecond {
		s.logger.Warn("slow request",
			"id", rid, "endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
			"status", status, "ms", float64(dur)/1e6, "slow_ms", s.cfg.SlowMs)
		return
	}
	if s.logger.Enabled(r.Context(), slog.LevelDebug) {
		s.logger.Debug("request",
			"id", rid, "endpoint", endpoint, "method", r.Method, "path", r.URL.Path,
			"status", status, "ms", float64(dur)/1e6)
	}
}

// serveAdmitted runs the deadline + admission + epoch pipeline around
// one handler invocation. A sampled request's trace records the
// admission-queue wait as the "queue" span, is tagged with the epoch
// that answered, and rides the request context into the handler (and
// from there into the batching collector).
func (s *Server) serveAdmitted(w http.ResponseWriter, r *http.Request, lim *limiter, tr *obs.Trace, h func(http.ResponseWriter, *http.Request, *servingEpoch) int) int {
	ctx, cancel, expired := requestContext(r)
	if expired {
		return s.writeDeadlineExceeded(w)
	}
	if cancel != nil {
		defer cancel()
		r = r.WithContext(ctx)
	}
	qStart := tr.Start() // zero-valued (and unused) when not sampled
	release, lstatus := lim.acquire(ctx)
	switch lstatus {
	case http.StatusServiceUnavailable:
		tr.Eventf("shed: inflight and queue full")
		return writeShed(w)
	case http.StatusGatewayTimeout:
		tr.Eventf("deadline expired in admission queue")
		return s.writeDeadlineExceeded(w)
	}
	defer release()
	if tr != nil {
		tr.Span("queue", qStart)
		// context.WithValue allocates, so only sampled requests attach
		// their trace; everyone else keeps the original context and the
		// batcher sees a nil trace.
		r = r.WithContext(obs.NewContext(r.Context(), tr))
	}
	ep := s.acquireEpoch()
	if ep == nil {
		return writeJSON(w, http.StatusServiceUnavailable, apiError{Error: errServerClosed.Error()})
	}
	defer ep.unref()
	tr.SetEpoch(ep.id)
	w.Header().Set("X-Epoch", strconv.FormatInt(ep.id, 10))
	w.Header().Set("X-Precision", ep.precision)
	return h(w, r, ep)
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return http.StatusInternalServerError
	}
	writeBody(w, status, buf)
	return status
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// encBufPool recycles the JSON encoding buffers of the hot handlers,
// so a cache-bypassing (cold) request does not allocate a fresh body
// buffer per response.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeBody marshals v into a pooled buffer. The returned bytes
// belong to the buffer: write/copy them, then release with
// putEncBuf. (json.Encoder terminates the body with a newline;
// cached and fresh responses both carry it, so the two are
// byte-identical.)
func encodeBody(v any) (*bytes.Buffer, []byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		encBufPool.Put(buf)
		return nil, nil, err
	}
	return buf, buf.Bytes(), nil
}

func putEncBuf(buf *bytes.Buffer) { encBufPool.Put(buf) }

// bypassCache honors the standard Cache-Control request header: a
// no-cache (or no-store) request is answered from the model and
// neither read from nor stored in the result caches — the cold-path
// benchmarking hook used by loadgen -cold.
func bypassCache(r *http.Request) bool {
	cc := r.Header.Get("Cache-Control")
	return strings.Contains(cc, "no-cache") || strings.Contains(cc, "no-store")
}

func badRequest(w http.ResponseWriter, format string, args ...any) int {
	return writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(format, args...)})
}

func notFound(w http.ResponseWriter, format string, args ...any) int {
	return writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		badRequest(w, "invalid request body: %v", err)
		return false
	}
	return true
}

// checkPatient classifies a dataset patient index. A negative index is
// a malformed request (400); an index beyond the cohort is well-formed
// but names no known patient (404). The score kernels index matrices
// directly, so this is the only line between a typo'd request and a
// panic in a worker goroutine.
func (ep *servingEpoch) checkPatient(w http.ResponseWriter, p int) (int, bool) {
	if p < 0 {
		return badRequest(w, "patient index %d is negative", p), false
	}
	if p >= ep.data.NumPatients() {
		return notFound(w, "patient %d not in cohort [0, %d)", p, ep.data.NumPatients()), false
	}
	return 0, true
}

func (ep *servingEpoch) validDrug(d int) error {
	if d < 0 || d >= ep.data.NumDrugs() {
		return fmt.Errorf("drug %d out of range [0, %d)", d, ep.data.NumDrugs())
	}
	return nil
}

// SuggestRequest is the /v1/suggest body: a dataset patient index, or
// the id of a patient registered via PUT /v1/patients/{id}.
type SuggestRequest struct {
	Patient   int    `json:"patient"`
	PatientID string `json:"patient_id,omitempty"`
	K         int    `json:"k,omitempty"`
	// Screen toggles alert screening (default true).
	Screen *bool `json:"screen,omitempty"`
}

// SuggestionOut is one ranked suggestion plus its regimen screening.
type SuggestionOut struct {
	DrugID   int            `json:"drug_id"`
	DrugName string         `json:"drug_name"`
	Score    float64        `json:"score"`
	Alerts   []alerts.Alert `json:"alerts,omitempty"`
}

// SuggestResponse is the /v1/suggest payload. Patient is -1 (and
// PatientID set) when the request addressed a registered patient.
type SuggestResponse struct {
	Patient     int             `json:"patient"`
	PatientID   string          `json:"patient_id,omitempty"`
	K           int             `json:"k"`
	Regimen     []int           `json:"regimen"`
	Suggestions []SuggestionOut `json:"suggestions"`
	// ListAlerts screens the suggested drugs against each other.
	ListAlerts []alerts.Alert `json:"list_alerts,omitempty"`
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request, ep *servingEpoch) int {
	var req SuggestRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > s.cfg.MaxK {
		return badRequest(w, "k %d exceeds maximum %d", k, s.cfg.MaxK)
	}
	screen := req.Screen == nil || *req.Screen
	nocache := bypassCache(r)

	if req.PatientID != "" {
		if req.Patient != 0 {
			return badRequest(w, "pass either patient or patient_id, not both")
		}
		return s.suggestRegistered(w, r, ep, req.PatientID, k, screen, nocache)
	}
	if status, ok := ep.checkPatient(w, req.Patient); !ok {
		return status
	}

	tr := obs.FromContext(r.Context())
	key := "s|" + strconv.Itoa(req.Patient) + "|" + strconv.Itoa(k) + "|" + strconv.FormatBool(screen)
	if !nocache {
		var cStart time.Time
		if tr != nil {
			cStart = time.Now()
		}
		body, ok := ep.suggestCache.Get(key)
		tr.Span("cache", cStart)
		if ok {
			tr.Eventf("cache hit")
			w.Header().Set("X-Cache", "HIT")
			writeBody(w, http.StatusOK, body)
			return http.StatusOK
		}
	}

	row, err := ep.batcher.Score(r.Context(), req.Patient)
	if err != nil {
		if isDeadlineErr(err) {
			return s.writeDeadlineExceeded(w)
		}
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
	suggs, err := ep.sys.SuggestFromScores(row, k)
	ep.batcher.PutRow(row) // suggestions hold copies; recycle the row
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
	resp := SuggestResponse{Patient: req.Patient, K: k, Regimen: ep.data.Medications(req.Patient)}
	return s.finishSuggest(w, ep, tr, resp, suggs, screen, nocache, key)
}

// suggestRegistered serves a registered patient through the inductive
// path: the cached (epoch-tagged) embedding scores through the tiled
// top-k engine, never the index batcher.
func (s *Server) suggestRegistered(w http.ResponseWriter, r *http.Request, ep *servingEpoch, id string, k int, screen, nocache bool) int {
	if err := validPatientID(id); err != nil {
		return badRequest(w, "%v", err)
	}
	tr := obs.FromContext(r.Context())
	emb, gen, regimen, found, err := s.patients.embeddingFor(ep, id)
	if !found {
		return notFound(w, "patient %q is not registered", id)
	}
	if err != nil {
		// The profile no longer embeds under the current model (e.g. a
		// hot reload changed the cohort shape). The registration is
		// kept; the conflict is reported until the profile or model is
		// fixed.
		return writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("patient %q cannot be embedded under the current model: %v", id, err)})
	}

	key := "r|" + id + "|" + strconv.FormatUint(gen, 10) + "|" + strconv.Itoa(k) + "|" + strconv.FormatBool(screen)
	if !nocache {
		if body, ok := ep.suggestCache.Get(key); ok {
			w.Header().Set("X-Cache", "HIT")
			writeBody(w, http.StatusOK, body)
			return http.StatusOK
		}
	}
	suggs, err := ep.sys.SuggestForEmbedding(emb, k)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
	resp := SuggestResponse{Patient: -1, PatientID: id, K: k, Regimen: regimen}
	return s.finishSuggest(w, ep, tr, resp, suggs, screen, nocache, key)
}

// finishSuggest screens, encodes, caches and writes a suggest
// response — the shared tail of the index and registry paths.
func (s *Server) finishSuggest(w http.ResponseWriter, ep *servingEpoch, tr *obs.Trace, resp SuggestResponse, suggs []dssddi.Suggestion, screen, nocache bool, key string) int {
	if resp.Regimen == nil {
		resp.Regimen = []int{}
	}
	ids := make([]int, len(suggs))
	for i, sg := range suggs {
		ids[i] = sg.DrugID
		out := SuggestionOut{DrugID: sg.DrugID, DrugName: sg.DrugName, Score: sg.Score}
		if screen {
			out.Alerts = ep.checker.ScreenAgainst(resp.Regimen, []int{sg.DrugID})
		}
		resp.Suggestions = append(resp.Suggestions, out)
	}
	if screen {
		resp.ListAlerts = ep.checker.ScreenList(ids)
	}
	var eStart time.Time
	if tr != nil {
		eStart = time.Now()
	}
	buf, body, err := encodeBody(resp)
	tr.Span("encode", eStart)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: "encoding response"})
	}
	if !nocache {
		// The cache needs an owned copy; the pooled buffer goes back.
		ep.suggestCache.Put(key, append([]byte(nil), body...))
	}
	w.Header().Set("X-Cache", "MISS")
	writeBody(w, http.StatusOK, body)
	putEncBuf(buf)
	return http.StatusOK
}

// ScoresRequest is the /v1/scores body.
type ScoresRequest struct {
	Patients []int `json:"patients"`
}

// ScoresResponse is the /v1/scores payload.
type ScoresResponse struct {
	Patients []int       `json:"patients"`
	Drugs    int         `json:"drugs"`
	Scores   [][]float64 `json:"scores"`
}

func (s *Server) handleScores(w http.ResponseWriter, r *http.Request, ep *servingEpoch) int {
	var req ScoresRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	if len(req.Patients) == 0 {
		return badRequest(w, "patients must be non-empty")
	}
	if len(req.Patients) > s.cfg.MaxScoreBatch {
		return badRequest(w, "at most %d patients per request (got %d)", s.cfg.MaxScoreBatch, len(req.Patients))
	}
	for _, p := range req.Patients {
		if status, ok := ep.checkPatient(w, p); !ok {
			return status
		}
	}
	// A propagated deadline that expired while the request was being
	// decoded aborts before the score matrix is touched.
	if err := r.Context().Err(); err != nil {
		return s.writeDeadlineExceeded(w)
	}
	rows := make([][]float64, len(req.Patients))
	for i := range rows {
		rows[i] = ep.batcher.rowPool.get()
	}
	recycle := func() {
		for _, r := range rows {
			ep.batcher.rowPool.put(r)
		}
	}
	if err := ep.sys.ScoresInto(rows, req.Patients); err != nil {
		recycle()
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
	status := writeJSON(w, http.StatusOK, ScoresResponse{Patients: req.Patients, Drugs: ep.data.NumDrugs(), Scores: rows})
	recycle() // writeJSON has serialized the rows; safe to reuse
	return status
}

// ExplainRequest is the /v1/explain body: either an explicit drug set
// or a patient whose top-k suggestions to explain.
type ExplainRequest struct {
	Drugs   []int `json:"drugs,omitempty"`
	Patient *int  `json:"patient,omitempty"`
	K       int   `json:"k,omitempty"`
}

// ExplainResponse is the /v1/explain payload.
type ExplainResponse struct {
	Drugs         []int    `json:"drugs"`
	SS            float64  `json:"ss"`
	Synergistic   []string `json:"synergistic,omitempty"`
	Antagonistic  []string `json:"antagonistic,omitempty"`
	SubgraphDrugs []string `json:"subgraph_drugs,omitempty"`
	Text          string   `json:"text"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, ep *servingEpoch) int {
	var req ExplainRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	drugs := req.Drugs
	switch {
	case len(drugs) > 0 && req.Patient != nil:
		return badRequest(w, "pass either drugs or patient, not both")
	case req.Patient != nil:
		if status, ok := ep.checkPatient(w, *req.Patient); !ok {
			return status
		}
		k := req.K
		if k <= 0 {
			k = s.cfg.DefaultK
		}
		if k > s.cfg.MaxK {
			return badRequest(w, "k %d exceeds maximum %d", k, s.cfg.MaxK)
		}
		row, err := ep.batcher.Score(r.Context(), *req.Patient)
		if err != nil {
			if isDeadlineErr(err) {
				return s.writeDeadlineExceeded(w)
			}
			return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		suggs, err := ep.sys.SuggestFromScores(row, k)
		ep.batcher.PutRow(row)
		if err != nil {
			return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		drugs = make([]int, len(suggs))
		for i, sg := range suggs {
			drugs[i] = sg.DrugID
		}
	case len(drugs) == 0:
		return badRequest(w, "pass drugs or patient")
	}
	for _, d := range drugs {
		if err := ep.validDrug(d); err != nil {
			return badRequest(w, "%v", err)
		}
	}

	sorted := append([]int(nil), drugs...)
	sort.Ints(sorted)
	keyParts := make([]string, len(sorted))
	for i, d := range sorted {
		keyParts[i] = strconv.Itoa(d)
	}
	key := "e|" + strings.Join(keyParts, ",")
	nocache := bypassCache(r)
	if !nocache {
		if body, ok := ep.explainCache.Get(key); ok {
			w.Header().Set("X-Cache", "HIT")
			writeBody(w, http.StatusOK, body)
			return http.StatusOK
		}
	}

	ex, err := ep.sys.Explain(drugs)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
	resp := ExplainResponse{
		Drugs:         sorted,
		SS:            ex.SS,
		Synergistic:   ex.Synergistic,
		Antagonistic:  ex.Antagonistic,
		SubgraphDrugs: ex.SubgraphDrugs,
		Text:          ex.Text,
	}
	buf, body, err := encodeBody(resp)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: "encoding response"})
	}
	if !nocache {
		ep.explainCache.Put(key, append([]byte(nil), body...))
	}
	w.Header().Set("X-Cache", "MISS")
	writeBody(w, http.StatusOK, body)
	putEncBuf(buf)
	return http.StatusOK
}

// AlertsRequest is the /v1/alerts body: a proposed medication list,
// optionally screened against a patient's current regimen too.
type AlertsRequest struct {
	Drugs   []int `json:"drugs"`
	Patient *int  `json:"patient,omitempty"`
}

// AlertsResponse is the /v1/alerts payload.
type AlertsResponse struct {
	Drugs         []int          `json:"drugs"`
	MaxSeverity   string         `json:"max_severity,omitempty"`
	ListAlerts    []alerts.Alert `json:"list_alerts"`
	Regimen       []int          `json:"regimen,omitempty"`
	RegimenAlerts []alerts.Alert `json:"regimen_alerts,omitempty"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request, ep *servingEpoch) int {
	var req AlertsRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	if len(req.Drugs) == 0 {
		return badRequest(w, "drugs must be non-empty")
	}
	for _, d := range req.Drugs {
		if err := ep.validDrug(d); err != nil {
			return badRequest(w, "%v", err)
		}
	}
	resp := AlertsResponse{Drugs: req.Drugs, ListAlerts: ep.checker.ScreenList(req.Drugs)}
	if resp.ListAlerts == nil {
		resp.ListAlerts = []alerts.Alert{}
	}
	all := resp.ListAlerts
	if req.Patient != nil {
		if status, ok := ep.checkPatient(w, *req.Patient); !ok {
			return status
		}
		resp.Regimen = ep.data.Medications(*req.Patient)
		resp.RegimenAlerts = ep.checker.ScreenAgainst(resp.Regimen, req.Drugs)
		all = append(append([]alerts.Alert{}, all...), resp.RegimenAlerts...)
	}
	if sev, any := alerts.MaxSeverity(all); any {
		resp.MaxSeverity = sev.String()
	}
	return writeJSON(w, http.StatusOK, resp)
}

// PatientPutRequest is the PUT /v1/patients/{id} body: the full
// profile to register or replace.
type PatientPutRequest struct {
	Regimen  []int     `json:"regimen"`
	Features []float64 `json:"features,omitempty"`
}

// PatientPatchRequest is the PATCH /v1/patients/{id} body: present
// fields replace the stored ones.
type PatientPatchRequest struct {
	Regimen  *[]int     `json:"regimen,omitempty"`
	Features *[]float64 `json:"features,omitempty"`
}

// PatientResponse is the payload of the registry endpoints.
type PatientResponse struct {
	ID      string `json:"id"`
	Created bool   `json:"created,omitempty"`
	Deleted bool   `json:"deleted,omitempty"`
	Gen     uint64 `json:"gen,omitempty"`
	// Version is the record's replication (last-writer-wins) version:
	// assigned by the acting ring owner on each mutation, durable and
	// comparable across replicas (unlike Gen, which is a per-process
	// cache-invalidation counter).
	Version uint64 `json:"version,omitempty"`
	Regimen []int  `json:"regimen,omitempty"`
	// HasFeatures reports whether a feature vector is on file (the
	// vector itself is not echoed back).
	HasFeatures bool `json:"has_features,omitempty"`
	// Epoch is the serving epoch the cached embedding was built
	// against.
	Epoch int64 `json:"epoch,omitempty"`
	// Record is the canonical replicated record, echoed only when the
	// mutation carried the router's X-Replicate header — the router
	// fans exactly these bytes out to the replica group.
	Record *regproto.Record `json:"record,omitempty"`
}

// replicateRecord loads the canonical record for id when the request
// asked for a replication echo (X-Replicate header present). A
// concurrent writer may already have moved the record past this
// mutation's version; fanning the newer record out is harmless under
// last-writer-wins.
func (s *Server) replicateRecord(r *http.Request, id string) *regproto.Record {
	if r.Header.Get(regproto.ReplicateHeader) == "" {
		return nil
	}
	recs := s.patients.recordsFor(regproto.SyncRequest{IDs: []string{id}})
	if len(recs) == 0 {
		return nil
	}
	return &recs[0]
}

func (s *Server) handlePatientPut(w http.ResponseWriter, r *http.Request, ep *servingEpoch) int {
	id := r.PathValue("id")
	if err := validPatientID(id); err != nil {
		return badRequest(w, "%v", err)
	}
	var req PatientPutRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	created, gen, version, err := s.patients.put(ep, obs.FromContext(r.Context()), id, req.Regimen, req.Features)
	if err != nil {
		if errors.Is(err, errDurability) {
			return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		return badRequest(w, "invalid profile: %v", err)
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	return writeJSON(w, status, PatientResponse{
		ID: id, Created: created, Gen: gen, Version: version,
		Regimen: req.Regimen, HasFeatures: req.Features != nil, Epoch: ep.id,
		Record: s.replicateRecord(r, id),
	})
}

func (s *Server) handlePatientPatch(w http.ResponseWriter, r *http.Request, ep *servingEpoch) int {
	id := r.PathValue("id")
	if err := validPatientID(id); err != nil {
		return badRequest(w, "%v", err)
	}
	var req PatientPatchRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	if req.Regimen == nil && req.Features == nil {
		return badRequest(w, "pass regimen and/or features")
	}
	found, gen, version, merged, err := s.patients.patch(ep, obs.FromContext(r.Context()), id, req.Regimen, req.Features)
	if !found {
		return notFound(w, "patient %q is not registered", id)
	}
	if err != nil {
		if errors.Is(err, errDurability) {
			return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		return badRequest(w, "invalid profile: %v", err)
	}
	return writeJSON(w, http.StatusOK, PatientResponse{
		ID: id, Gen: gen, Version: version, Regimen: merged, Epoch: ep.id,
		Record: s.replicateRecord(r, id),
	})
}

func (s *Server) handlePatientGet(w http.ResponseWriter, r *http.Request, _ *servingEpoch) int {
	id := r.PathValue("id")
	if err := validPatientID(id); err != nil {
		return badRequest(w, "%v", err)
	}
	regimen, features, gen, version, embEpoch, found := s.patients.get(id)
	if !found {
		return notFound(w, "patient %q is not registered", id)
	}
	return writeJSON(w, http.StatusOK, PatientResponse{
		ID: id, Gen: gen, Version: version, Regimen: regimen, HasFeatures: features != nil, Epoch: embEpoch,
	})
}

func (s *Server) handlePatientDelete(w http.ResponseWriter, r *http.Request, _ *servingEpoch) int {
	id := r.PathValue("id")
	if err := validPatientID(id); err != nil {
		return badRequest(w, "%v", err)
	}
	found, version, err := s.patients.delete(id)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
	if !found {
		return notFound(w, "patient %q is not registered", id)
	}
	return writeJSON(w, http.StatusOK, PatientResponse{
		ID: id, Deleted: true, Version: version,
		Record: s.replicateRecord(r, id),
	})
}

// ReloadRequest is the /v1/admin/reload body; an empty body (or empty
// path) reloads Config.SnapshotPath. An empty precision keeps the
// server's current one; a named precision ("f64", "f32",
// "int8-experimental") quantizes the reloaded model accordingly and
// becomes the server's precision from this epoch on.
type ReloadRequest struct {
	Path      string `json:"path,omitempty"`
	Precision string `json:"precision,omitempty"`
}

// ReloadResponse reports the epoch the reload produced.
type ReloadResponse struct {
	Epoch     int64               `json:"epoch"`
	Precision string              `json:"precision"`
	Model     dssddi.SnapshotInfo `json:"model"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request, _ *servingEpoch) int {
	var req ReloadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && err != io.EOF {
		return badRequest(w, "invalid request body: %v", err)
	}
	if req.Path == "" && s.cfg.SnapshotPath == "" {
		return badRequest(w, "no snapshot path: pass {\"path\": ...} or configure one")
	}
	if err := dssddi.ValidatePrecision(req.Precision); err != nil {
		return badRequest(w, "%v", err)
	}
	// Respond with the swapped-in epoch's own identity — under
	// concurrent reloads the current pointer may already be a later
	// epoch, which must not be misattributed to this reload's id.
	ep, err := s.reloadFromPath(req.Path, req.Precision)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: fmt.Sprintf("reload failed: %v", err)})
	}
	return writeJSON(w, http.StatusOK, ReloadResponse{Epoch: ep.id, Precision: ep.precision, Model: ep.info})
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status        string              `json:"status"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	Epoch         int64               `json:"epoch"`
	Precision     string              `json:"precision"`
	Reloads       int64               `json:"reloads"`
	Patients      int                 `json:"registered_patients"`
	Model         dssddi.SnapshotInfo `json:"model"`
	Build         obs.BuildInfo       `json:"build"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request, ep *servingEpoch) int {
	return writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Epoch:         ep.id,
		Precision:     ep.precision,
		Reloads:       s.reloads.Load(),
		Patients:      s.patients.len(),
		Model:         ep.info,
		Build:         obs.Build(),
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request, ep *servingEpoch) int {
	if r.URL.Query().Get("format") == "prometheus" {
		return s.writePromMetrics(w, ep)
	}
	batches, requests := ep.batcher.Stats()
	m := Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Epoch:         ep.id,
		Reloads:       s.reloads.Load(),
		Memory: MemoryMetrics{
			Precision:              ep.precision,
			ModelBytes:             int64(ep.sys.ResidentModelBytes()),
			RegistryEmbeddingBytes: s.patients.embeddingBytes(),
		},
		Endpoints:    s.metrics.snapshot(),
		SuggestCache: cacheMetrics(ep.suggestCache),
		ExplainCache: cacheMetrics(ep.explainCache),
		Batching:     BatchMetrics{Batches: batches, Requests: requests},
		Registry: RegistryMetrics{
			Patients:       s.patients.len(),
			Writes:         s.patients.writes.Load(),
			Reembeds:       s.patients.reembeds.Load(),
			ReplicaApplies: s.patients.replicaApplies.Load(),
			ReplicaStale:   s.patients.replicaStale.Load(),
		},
		DeadlineTimeouts: s.deadlineTimeouts.Load(),
	}
	if batches > 0 {
		m.Batching.AvgBatchSize = float64(requests) / float64(batches)
	}
	for name, lim := range s.limits {
		sheds := lim.shedCount()
		m.Sheds += sheds
		if em, ok := m.Endpoints[name]; ok {
			em.Sheds = sheds
			m.Endpoints[name] = em
		}
	}
	if st := s.patients.store; st != nil {
		m.WAL = &WALMetrics{
			Path:               st.log.Path(),
			SyncPolicy:         s.cfg.WALSync,
			Records:            st.log.Records(),
			Bytes:              st.log.Bytes(),
			Syncs:              st.log.Syncs(),
			Replayed:           st.log.Replayed(),
			RecoveredPatients:  st.recovered,
			TornBytes:          st.log.TornBytes(),
			Checkpoints:        st.checkpoints.Load(),
			CheckpointFailures: st.ckptFailures.Load(),
			PendingRecords:     st.pending.Load(),
		}
		if m.WAL.SyncPolicy == "" {
			m.WAL.SyncPolicy = "interval"
		}
	}
	return writeJSON(w, http.StatusOK, m)
}

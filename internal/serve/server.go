// Package serve wraps a trained (typically snapshot-loaded)
// dssddi.System in a concurrent HTTP JSON API — the decision-support
// service the paper positions DSSDDI as. The system is treated as
// immutable: every handler only reads, so the server takes no lock
// around the model and scales with unbounded concurrent clients.
//
// Endpoints:
//
//	POST /v1/suggest   rank top-k drugs for a patient, with alerts
//	POST /v1/scores    raw score rows for a set of patients
//	POST /v1/explain   MS-module explanation for a drug set or patient
//	POST /v1/alerts    severity-tiered DDI screening of a drug list
//	GET  /healthz      liveness + model identity
//	GET  /metricsz     per-endpoint latency, cache and batching counters
//
// Concurrent /v1/suggest requests are coalesced by a micro-batching
// scorer into single score-matrix calls, and per-patient results are
// cached in a sharded LRU; both are response-invariant (bitwise) and
// exist purely for throughput.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dssddi"
	"dssddi/internal/alerts"
)

var errServerClosed = errors.New("serve: server is shutting down")

// Config tunes the serving layer. The zero value gets sensible
// defaults from fill.
type Config struct {
	// MaxBatch bounds the patients coalesced into one score-matrix
	// call (default 64).
	MaxBatch int
	// BatchWindow is how long a lone request waits for company before
	// being scored solo. The zero value batches opportunistically —
	// coalescing whatever is already queued without ever waiting — so
	// idle-server latency is never inflated; set a small positive
	// window (e.g. 1ms) to trade lone-request latency for bigger
	// batches under bursty load.
	BatchWindow time.Duration
	// CacheSize is the total entries across the suggest and explain
	// result caches (default 4096; negative disables caching).
	CacheSize int
	// CacheShards spreads cache locking (default 16).
	CacheShards int
	// DefaultK is the suggestion list length when a request omits k
	// (default 4, the paper's headline cut-off).
	DefaultK int
	// MaxK caps requested list lengths (default: number of drugs).
	MaxK int
	// MaxScoreBatch caps the patients per /v1/scores request
	// (default 256).
	MaxScoreBatch int
}

func (c *Config) fill(drugs int) {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 4
	}
	if c.MaxK <= 0 || c.MaxK > drugs {
		c.MaxK = drugs
	}
	if c.MaxScoreBatch <= 0 {
		c.MaxScoreBatch = 256
	}
}

// Server is the HTTP serving layer over one immutable trained system.
type Server struct {
	sys     *dssddi.System
	data    *dssddi.Data
	checker *alerts.Checker
	info    dssddi.SnapshotInfo
	cfg     Config

	batcher      *batcher
	suggestCache *lruCache
	explainCache *lruCache
	metrics      *registry
	start        time.Time
}

// New builds a server over a trained system. It fails on an untrained
// system (nothing to serve) — load a snapshot or call Train first.
func New(sys *dssddi.System, cfg Config) (*Server, error) {
	data := sys.Data()
	if data == nil {
		return nil, fmt.Errorf("serve: system is not trained")
	}
	info, err := sys.SnapshotInfo()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	emb, err := sys.DrugRelationEmbeddings()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	names := make([]string, data.NumDrugs())
	for i := range names {
		names[i] = data.DrugName(i)
	}
	cfg.fill(data.NumDrugs())
	s := &Server{
		sys:     sys,
		data:    data,
		checker: alerts.NewChecker(data.Dataset().DDI, emb, names),
		info:    info,
		cfg:     cfg,
		metrics: newRegistry("suggest", "scores", "explain", "alerts", "healthz", "metricsz"),
		start:   time.Now(),
	}
	s.batcher = newBatcher(sys, cfg.MaxBatch, cfg.BatchWindow, data.NumDrugs())
	half := cfg.CacheSize / 2
	s.suggestCache = newLRUCache(cfg.CacheSize-half, cfg.CacheShards)
	s.explainCache = newLRUCache(half, cfg.CacheShards)
	return s, nil
}

// Close stops the batching collector.
func (s *Server) Close() { s.batcher.Close() }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/suggest", s.instrument("suggest", http.MethodPost, s.handleSuggest))
	mux.HandleFunc("/v1/scores", s.instrument("scores", http.MethodPost, s.handleScores))
	mux.HandleFunc("/v1/explain", s.instrument("explain", http.MethodPost, s.handleExplain))
	mux.HandleFunc("/v1/alerts", s.instrument("alerts", http.MethodPost, s.handleAlerts))
	mux.HandleFunc("/healthz", s.instrument("healthz", http.MethodGet, s.handleHealthz))
	mux.HandleFunc("/metricsz", s.instrument("metricsz", http.MethodGet, s.handleMetricsz))
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// instrument wraps a handler with method enforcement, timing and
// error counting.
func (s *Server) instrument(name, method string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	stats := s.metrics.get(name)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		status := http.StatusMethodNotAllowed
		if r.Method == method {
			status = h(w, r)
		} else {
			writeJSON(w, status, apiError{Error: fmt.Sprintf("method %s not allowed; use %s", r.Method, method)})
		}
		stats.observe(time.Since(t0), status >= 400)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	buf, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return http.StatusInternalServerError
	}
	writeBody(w, status, buf)
	return status
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// encBufPool recycles the JSON encoding buffers of the hot handlers,
// so a cache-bypassing (cold) request does not allocate a fresh body
// buffer per response.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeBody marshals v into a pooled buffer. The returned bytes
// belong to the buffer: write/copy them, then release with
// putEncBuf. (json.Encoder terminates the body with a newline;
// cached and fresh responses both carry it, so the two are
// byte-identical.)
func encodeBody(v any) (*bytes.Buffer, []byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		encBufPool.Put(buf)
		return nil, nil, err
	}
	return buf, buf.Bytes(), nil
}

func putEncBuf(buf *bytes.Buffer) { encBufPool.Put(buf) }

// bypassCache honors the standard Cache-Control request header: a
// no-cache (or no-store) request is answered from the model and
// neither read from nor stored in the result caches — the cold-path
// benchmarking hook used by loadgen -cold.
func bypassCache(r *http.Request) bool {
	cc := r.Header.Get("Cache-Control")
	return strings.Contains(cc, "no-cache") || strings.Contains(cc, "no-store")
}

func badRequest(w http.ResponseWriter, format string, args ...any) int {
	return writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		badRequest(w, "invalid request body: %v", err)
		return false
	}
	return true
}

// validPatient bounds-checks a patient index; the score kernels index
// matrices directly, so this is the only line between a typo'd request
// and a panic in a worker goroutine.
func (s *Server) validPatient(p int) error {
	if p < 0 || p >= s.data.NumPatients() {
		return fmt.Errorf("patient %d out of range [0, %d)", p, s.data.NumPatients())
	}
	return nil
}

func (s *Server) validDrug(d int) error {
	if d < 0 || d >= s.data.NumDrugs() {
		return fmt.Errorf("drug %d out of range [0, %d)", d, s.data.NumDrugs())
	}
	return nil
}

// SuggestRequest is the /v1/suggest body.
type SuggestRequest struct {
	Patient int `json:"patient"`
	K       int `json:"k,omitempty"`
	// Screen toggles alert screening (default true).
	Screen *bool `json:"screen,omitempty"`
}

// SuggestionOut is one ranked suggestion plus its regimen screening.
type SuggestionOut struct {
	DrugID   int            `json:"drug_id"`
	DrugName string         `json:"drug_name"`
	Score    float64        `json:"score"`
	Alerts   []alerts.Alert `json:"alerts,omitempty"`
}

// SuggestResponse is the /v1/suggest payload.
type SuggestResponse struct {
	Patient     int             `json:"patient"`
	K           int             `json:"k"`
	Regimen     []int           `json:"regimen"`
	Suggestions []SuggestionOut `json:"suggestions"`
	// ListAlerts screens the suggested drugs against each other.
	ListAlerts []alerts.Alert `json:"list_alerts,omitempty"`
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) int {
	var req SuggestRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	if err := s.validPatient(req.Patient); err != nil {
		return badRequest(w, "%v", err)
	}
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > s.cfg.MaxK {
		return badRequest(w, "k %d exceeds maximum %d", k, s.cfg.MaxK)
	}
	screen := req.Screen == nil || *req.Screen
	nocache := bypassCache(r)

	key := "s|" + strconv.Itoa(req.Patient) + "|" + strconv.Itoa(k) + "|" + strconv.FormatBool(screen)
	if !nocache {
		if body, ok := s.suggestCache.Get(key); ok {
			w.Header().Set("X-Cache", "HIT")
			writeBody(w, http.StatusOK, body)
			return http.StatusOK
		}
	}

	row, err := s.batcher.Score(req.Patient)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
	suggs, err := s.sys.SuggestFromScores(row, k)
	s.batcher.PutRow(row) // suggestions hold copies; recycle the row
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}

	resp := SuggestResponse{Patient: req.Patient, K: k, Regimen: s.data.Medications(req.Patient)}
	ids := make([]int, len(suggs))
	for i, sg := range suggs {
		ids[i] = sg.DrugID
		out := SuggestionOut{DrugID: sg.DrugID, DrugName: sg.DrugName, Score: sg.Score}
		if screen {
			out.Alerts = s.checker.ScreenAgainst(resp.Regimen, []int{sg.DrugID})
		}
		resp.Suggestions = append(resp.Suggestions, out)
	}
	if screen {
		resp.ListAlerts = s.checker.ScreenList(ids)
	}

	buf, body, err := encodeBody(resp)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: "encoding response"})
	}
	if !nocache {
		// The cache needs an owned copy; the pooled buffer goes back.
		s.suggestCache.Put(key, append([]byte(nil), body...))
	}
	w.Header().Set("X-Cache", "MISS")
	writeBody(w, http.StatusOK, body)
	putEncBuf(buf)
	return http.StatusOK
}

// ScoresRequest is the /v1/scores body.
type ScoresRequest struct {
	Patients []int `json:"patients"`
}

// ScoresResponse is the /v1/scores payload.
type ScoresResponse struct {
	Patients []int       `json:"patients"`
	Drugs    int         `json:"drugs"`
	Scores   [][]float64 `json:"scores"`
}

func (s *Server) handleScores(w http.ResponseWriter, r *http.Request) int {
	var req ScoresRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	if len(req.Patients) == 0 {
		return badRequest(w, "patients must be non-empty")
	}
	if len(req.Patients) > s.cfg.MaxScoreBatch {
		return badRequest(w, "at most %d patients per request (got %d)", s.cfg.MaxScoreBatch, len(req.Patients))
	}
	for _, p := range req.Patients {
		if err := s.validPatient(p); err != nil {
			return badRequest(w, "%v", err)
		}
	}
	rows := make([][]float64, len(req.Patients))
	for i := range rows {
		rows[i] = s.batcher.rowPool.get()
	}
	recycle := func() {
		for _, r := range rows {
			s.batcher.rowPool.put(r)
		}
	}
	if err := s.sys.ScoresInto(rows, req.Patients); err != nil {
		recycle()
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
	status := writeJSON(w, http.StatusOK, ScoresResponse{Patients: req.Patients, Drugs: s.data.NumDrugs(), Scores: rows})
	recycle() // writeJSON has serialized the rows; safe to reuse
	return status
}

// ExplainRequest is the /v1/explain body: either an explicit drug set
// or a patient whose top-k suggestions to explain.
type ExplainRequest struct {
	Drugs   []int `json:"drugs,omitempty"`
	Patient *int  `json:"patient,omitempty"`
	K       int   `json:"k,omitempty"`
}

// ExplainResponse is the /v1/explain payload.
type ExplainResponse struct {
	Drugs         []int    `json:"drugs"`
	SS            float64  `json:"ss"`
	Synergistic   []string `json:"synergistic,omitempty"`
	Antagonistic  []string `json:"antagonistic,omitempty"`
	SubgraphDrugs []string `json:"subgraph_drugs,omitempty"`
	Text          string   `json:"text"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) int {
	var req ExplainRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	drugs := req.Drugs
	switch {
	case len(drugs) > 0 && req.Patient != nil:
		return badRequest(w, "pass either drugs or patient, not both")
	case req.Patient != nil:
		if err := s.validPatient(*req.Patient); err != nil {
			return badRequest(w, "%v", err)
		}
		k := req.K
		if k <= 0 {
			k = s.cfg.DefaultK
		}
		if k > s.cfg.MaxK {
			return badRequest(w, "k %d exceeds maximum %d", k, s.cfg.MaxK)
		}
		row, err := s.batcher.Score(*req.Patient)
		if err != nil {
			return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		suggs, err := s.sys.SuggestFromScores(row, k)
		s.batcher.PutRow(row)
		if err != nil {
			return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		}
		drugs = make([]int, len(suggs))
		for i, sg := range suggs {
			drugs[i] = sg.DrugID
		}
	case len(drugs) == 0:
		return badRequest(w, "pass drugs or patient")
	}
	for _, d := range drugs {
		if err := s.validDrug(d); err != nil {
			return badRequest(w, "%v", err)
		}
	}

	sorted := append([]int(nil), drugs...)
	sort.Ints(sorted)
	keyParts := make([]string, len(sorted))
	for i, d := range sorted {
		keyParts[i] = strconv.Itoa(d)
	}
	key := "e|" + strings.Join(keyParts, ",")
	nocache := bypassCache(r)
	if !nocache {
		if body, ok := s.explainCache.Get(key); ok {
			w.Header().Set("X-Cache", "HIT")
			writeBody(w, http.StatusOK, body)
			return http.StatusOK
		}
	}

	ex, err := s.sys.Explain(drugs)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
	resp := ExplainResponse{
		Drugs:         sorted,
		SS:            ex.SS,
		Synergistic:   ex.Synergistic,
		Antagonistic:  ex.Antagonistic,
		SubgraphDrugs: ex.SubgraphDrugs,
		Text:          ex.Text,
	}
	buf, body, err := encodeBody(resp)
	if err != nil {
		return writeJSON(w, http.StatusInternalServerError, apiError{Error: "encoding response"})
	}
	if !nocache {
		s.explainCache.Put(key, append([]byte(nil), body...))
	}
	w.Header().Set("X-Cache", "MISS")
	writeBody(w, http.StatusOK, body)
	putEncBuf(buf)
	return http.StatusOK
}

// AlertsRequest is the /v1/alerts body: a proposed medication list,
// optionally screened against a patient's current regimen too.
type AlertsRequest struct {
	Drugs   []int `json:"drugs"`
	Patient *int  `json:"patient,omitempty"`
}

// AlertsResponse is the /v1/alerts payload.
type AlertsResponse struct {
	Drugs         []int          `json:"drugs"`
	MaxSeverity   string         `json:"max_severity,omitempty"`
	ListAlerts    []alerts.Alert `json:"list_alerts"`
	Regimen       []int          `json:"regimen,omitempty"`
	RegimenAlerts []alerts.Alert `json:"regimen_alerts,omitempty"`
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) int {
	var req AlertsRequest
	if !decodeBody(w, r, &req) {
		return http.StatusBadRequest
	}
	if len(req.Drugs) == 0 {
		return badRequest(w, "drugs must be non-empty")
	}
	for _, d := range req.Drugs {
		if err := s.validDrug(d); err != nil {
			return badRequest(w, "%v", err)
		}
	}
	resp := AlertsResponse{Drugs: req.Drugs, ListAlerts: s.checker.ScreenList(req.Drugs)}
	if resp.ListAlerts == nil {
		resp.ListAlerts = []alerts.Alert{}
	}
	all := resp.ListAlerts
	if req.Patient != nil {
		if err := s.validPatient(*req.Patient); err != nil {
			return badRequest(w, "%v", err)
		}
		resp.Regimen = s.data.Medications(*req.Patient)
		resp.RegimenAlerts = s.checker.ScreenAgainst(resp.Regimen, req.Drugs)
		all = append(append([]alerts.Alert{}, all...), resp.RegimenAlerts...)
	}
	if sev, any := alerts.MaxSeverity(all); any {
		resp.MaxSeverity = sev.String()
	}
	return writeJSON(w, http.StatusOK, resp)
}

// HealthResponse is the /healthz payload.
type HealthResponse struct {
	Status        string              `json:"status"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	Model         dssddi.SnapshotInfo `json:"model"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) int {
	return writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Model:         s.info,
	})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) int {
	batches, requests := s.batcher.Stats()
	m := Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Endpoints:     s.metrics.snapshot(),
		SuggestCache:  cacheMetrics(s.suggestCache),
		ExplainCache:  cacheMetrics(s.explainCache),
		Batching:      BatchMetrics{Batches: batches, Requests: requests},
	}
	if batches > 0 {
		m.Batching.AvgBatchSize = float64(requests) / float64(batches)
	}
	return writeJSON(w, http.StatusOK, m)
}

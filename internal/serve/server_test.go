package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dssddi"
)

var (
	sysOnce sync.Once
	testSys *dssddi.System
)

// system trains one small shared system for every server test.
func system(t testing.TB) *dssddi.System {
	t.Helper()
	sysOnce.Do(func() {
		data := dssddi.GenerateChronic(11, 50, 40)
		cfg := dssddi.DefaultConfig()
		cfg.DDIEpochs = 15
		cfg.MDEpochs = 25
		cfg.Hidden = 16
		sys := dssddi.New(cfg)
		if err := sys.Train(data); err != nil {
			panic(err)
		}
		testSys = sys
	})
	if testSys == nil {
		t.Fatal("shared test system failed to train")
	}
	return testSys
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(system(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestSuggestMatchesLibrary(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{})
	p := sys.Data().TestPatients()[0]

	resp, body := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: p, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got SuggestResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := sys.Suggest(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Suggestions) != len(want) {
		t.Fatalf("got %d suggestions, want %d", len(got.Suggestions), len(want))
	}
	for i, sg := range want {
		g := got.Suggestions[i]
		if g.DrugID != sg.DrugID || g.DrugName != sg.DrugName || g.Score != sg.Score {
			t.Fatalf("suggestion %d diverged: %+v vs %+v", i, g, sg)
		}
	}
	if got.Regimen == nil {
		t.Fatal("regimen missing")
	}
}

func TestSuggestCacheHit(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{})
	p := sys.Data().TestPatients()[1]

	first, firstBody := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: p, K: 4})
	if first.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first call X-Cache = %q, want MISS", first.Header.Get("X-Cache"))
	}
	second, secondBody := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: p, K: 4})
	if second.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second call X-Cache = %q, want HIT", second.Header.Get("X-Cache"))
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatal("cached body differs from computed body")
	}
}

// TestConcurrentBatchedSuggestMatchesSerial is the acceptance-critical
// test: under concurrent load (run with -race) the batched + cached
// server must return byte-identical suggestion payloads to the direct
// library path for every patient.
func TestConcurrentBatchedSuggestMatchesSerial(t *testing.T) {
	sys := system(t)
	srv, ts := newTestServer(t, Config{MaxBatch: 16, BatchWindow: 2 * time.Millisecond})

	patients := sys.Data().TestPatients()
	if len(patients) > 10 {
		patients = patients[:10]
	}
	// Serial ground truth via the library.
	wantRows := make(map[int][]float64, len(patients))
	for _, p := range patients {
		rows, err := sys.Scores([]int{p})
		if err != nil {
			t.Fatal(err)
		}
		wantRows[p] = rows[0]
	}

	const goroutines = 24
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				p := patients[(g+it)%len(patients)]
				resp, body := postQuiet(ts.URL+"/v1/suggest", SuggestRequest{Patient: p, K: 4})
				if resp == nil || resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("patient %d: bad response %v: %s", p, resp, body)
					return
				}
				var got SuggestResponse
				if err := json.Unmarshal(body, &got); err != nil {
					errs <- err
					return
				}
				want, err := sys.SuggestFromScores(wantRows[p], 4)
				if err != nil {
					errs <- err
					return
				}
				for i, sg := range want {
					g := got.Suggestions[i]
					if g.DrugID != sg.DrugID || g.Score != sg.Score {
						errs <- fmt.Errorf("patient %d suggestion %d diverged under load: %+v vs %+v", p, i, g, sg)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The load above must actually have exercised coalescing: far more
	// requests than Scores calls (cache hits also reduce batch calls,
	// so just assert the invariant requests >= batches).
	batches, requests := srv.epoch.Load().batcher.Stats()
	if batches == 0 || requests < batches {
		t.Fatalf("batching counters implausible: %d batches for %d requests", batches, requests)
	}
}

// postQuiet is post without *testing.T (for goroutines).
func postQuiet(url string, body any) (*http.Response, []byte) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func TestBatcherCoalesces(t *testing.T) {
	sys := system(t)
	b := newBatcher(sys, 32, 5*time.Millisecond, sys.Data().NumDrugs())
	defer b.Close()

	patients := sys.Data().TestPatients()[:8]
	var wg sync.WaitGroup
	rows := make([][]float64, len(patients))
	for i, p := range patients {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			row, err := b.Score(context.Background(), p)
			if err != nil {
				t.Error(err)
				return
			}
			rows[i] = row
		}(i, p)
	}
	wg.Wait()
	batches, requests := b.Stats()
	if requests != int64(len(patients)) {
		t.Fatalf("requests %d, want %d", requests, len(patients))
	}
	if batches >= requests {
		t.Fatalf("no coalescing: %d batches for %d requests", batches, requests)
	}
	for i, p := range patients {
		want, err := sys.Scores([]int{p})
		if err != nil {
			t.Fatal(err)
		}
		for j := range want[0] {
			if rows[i][j] != want[0][j] {
				t.Fatalf("batched row for patient %d differs at col %d", p, j)
			}
		}
	}
}

func TestScoresEndpoint(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{})
	patients := sys.Data().TestPatients()[:3]

	resp, body := post(t, ts.URL+"/v1/scores", ScoresRequest{Patients: patients})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ScoresResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := sys.Scores(patients)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Scores) != len(want) || got.Drugs != sys.Data().NumDrugs() {
		t.Fatalf("shape wrong: %d rows, %d drugs", len(got.Scores), got.Drugs)
	}
	for i := range want {
		for j := range want[i] {
			if got.Scores[i][j] != want[i][j] {
				t.Fatalf("score (%d,%d) differs", i, j)
			}
		}
	}

	// Validation: an out-of-range patient is unknown (404), a negative
	// one malformed (400), and oversized batches are rejected.
	if resp, body := post(t, ts.URL+"/v1/scores", ScoresRequest{Patients: []int{1 << 30}}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range patient: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := post(t, ts.URL+"/v1/scores", ScoresRequest{Patients: []int{-1}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("negative patient must 400")
	}
	if resp, _ := post(t, ts.URL+"/v1/scores", ScoresRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("empty patients must 400")
	}
	big := make([]int, 10_000)
	if resp, _ := post(t, ts.URL+"/v1/scores", ScoresRequest{Patients: big}); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("oversized batch must 400")
	}
}

func TestExplainEndpoint(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{})
	p := sys.Data().TestPatients()[2]

	// Patient form must match the library's suggest-then-explain.
	resp, body := post(t, ts.URL+"/v1/explain", ExplainRequest{Patient: &p, K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ExplainResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	suggs, err := sys.Suggest(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.ExplainSuggestions(suggs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text != want.Text || got.SS != want.SS {
		t.Fatalf("explain diverged:\nserver %q\nlibrary %q", got.Text, want.Text)
	}

	// Drug-set form, plus cache behaviour (key is order-independent).
	r1, b1 := post(t, ts.URL+"/v1/explain", ExplainRequest{Drugs: []int{5, 2, 9}})
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("drug-set explain: %d %q", r1.StatusCode, r1.Header.Get("X-Cache"))
	}
	r2, b2 := post(t, ts.URL+"/v1/explain", ExplainRequest{Drugs: []int{9, 5, 2}})
	if r2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("permuted drug set must hit the cache, got %q", r2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached explain body differs")
	}

	if resp, _ := post(t, ts.URL+"/v1/explain", ExplainRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("empty explain request must 400")
	}
	if resp, _ := post(t, ts.URL+"/v1/explain", ExplainRequest{Drugs: []int{-1}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("negative drug must 400")
	}
}

func TestAlertsEndpoint(t *testing.T) {
	sys := system(t)
	srv, ts := newTestServer(t, Config{})

	// Find a recorded antagonistic pair to guarantee an alert.
	ddi := sys.Data().Dataset().DDI
	el := ddi.Edges()
	var u, v int
	found := false
	for i := range el.U {
		if el.S[i] == -1 {
			u, v, found = el.U[i], el.V[i], true
			break
		}
	}
	if !found {
		t.Skip("no antagonistic edge in the synthetic graph")
	}
	resp, body := post(t, ts.URL+"/v1/alerts", AlertsRequest{Drugs: []int{u, v}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got AlertsResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.ListAlerts) == 0 {
		t.Fatalf("antagonistic pair (%d,%d) produced no alert: %s", u, v, body)
	}
	if got.MaxSeverity != "critical" && got.MaxSeverity != "major" {
		t.Fatalf("recorded antagonism must tier major or critical, got %q", got.MaxSeverity)
	}
	if got.ListAlerts[0].Message == "" {
		t.Fatal("alert message empty")
	}

	// With a patient, the regimen screening section appears.
	p := sys.Data().TestPatients()[0]
	resp, body = post(t, ts.URL+"/v1/alerts", AlertsRequest{Drugs: []int{u, v}, Patient: &p})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Regimen == nil {
		t.Fatal("patient screening must include the regimen")
	}

	_ = srv
	if resp, _ := post(t, ts.URL+"/v1/alerts", AlertsRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("empty alerts request must 400")
	}
}

func TestHealthzAndMetricsz(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{})

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Model.Drugs != sys.Data().NumDrugs() {
		t.Fatalf("healthz payload wrong: %s", body)
	}
	if health.Model.DatasetSHA256 == "" {
		t.Fatal("healthz must expose the dataset digest")
	}

	// Drive one suggest so the counters move.
	p := sys.Data().TestPatients()[0]
	post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: p})

	resp, body = get(t, ts.URL+"/metricsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz status %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Endpoints["suggest"].Requests < 1 {
		t.Fatalf("suggest counter did not move: %s", body)
	}
	if m.Endpoints["healthz"].Requests < 1 {
		t.Fatal("healthz counter did not move")
	}
	if m.Batching.Requests < 1 {
		t.Fatal("batching counters did not move")
	}
}

func TestMethodEnforcement(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/suggest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on suggest: %d", resp.StatusCode)
	}
}

func TestCacheDisabled(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{CacheSize: -1})
	p := sys.Data().TestPatients()[0]
	for i := 0; i < 2; i++ {
		resp, _ := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: p})
		if resp.Header.Get("X-Cache") != "MISS" {
			t.Fatalf("call %d: caching disabled must always MISS, got %q", i, resp.Header.Get("X-Cache"))
		}
	}
}

func TestZeroBatchWindowNeverWaits(t *testing.T) {
	sys := system(t)
	b := newBatcher(sys, 32, 0, sys.Data().NumDrugs())
	defer b.Close()
	p := sys.Data().TestPatients()[0]
	start := time.Now()
	if _, err := b.Score(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	// A lone request with no window must not sit in the collector; the
	// bound here is generous (scoring itself takes well under 50ms).
	if lat := time.Since(start); lat > 500*time.Millisecond {
		t.Fatalf("zero-window lone request took %v", lat)
	}
}

func TestScoreAfterCloseErrors(t *testing.T) {
	sys := system(t)
	b := newBatcher(sys, 4, 0, sys.Data().NumDrugs())
	b.Close()
	if _, err := b.Score(context.Background(), 0); err == nil {
		t.Fatal("Score after Close must error, not hang")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(4, 2)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if got := c.Len(); got > 4 {
		t.Fatalf("cache holds %d entries, cap 4", got)
	}
	if newLRUCache(0, 4) != nil {
		t.Fatal("zero capacity must disable the cache")
	}
	// nil cache is a valid always-miss cache.
	var nilCache *lruCache
	if _, ok := nilCache.Get("x"); ok {
		t.Fatal("nil cache must miss")
	}
	nilCache.Put("x", nil) // must not panic
}

// TestCacheControlNoCacheBypasses pins the cold-path benchmarking
// hook: a Cache-Control: no-cache request is recomputed every time,
// never reads the cache and never populates it — but returns the
// byte-identical body a cached request would.
func TestCacheControlNoCacheBypasses(t *testing.T) {
	sys := system(t)
	_, ts := newTestServer(t, Config{})
	p := sys.Data().TestPatients()[2]

	cold := func() (*http.Response, []byte) {
		buf, _ := json.Marshal(SuggestRequest{Patient: p, K: 4})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/suggest", bytes.NewReader(buf))
		req.Header.Set("Cache-Control", "no-cache")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp, out
	}

	first, firstBody := cold()
	if first.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first no-cache call X-Cache = %q, want MISS", first.Header.Get("X-Cache"))
	}
	second, secondBody := cold()
	if second.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("second no-cache call X-Cache = %q, want MISS (nothing may be stored)", second.Header.Get("X-Cache"))
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Fatal("cold responses must be identical")
	}

	// A normal request now misses (no-cache never populated the cache)
	// and then hits; the bodies all agree.
	warm1, warmBody := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: p, K: 4})
	if warm1.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first cached-path call X-Cache = %q, want MISS", warm1.Header.Get("X-Cache"))
	}
	warm2, hitBody := post(t, ts.URL+"/v1/suggest", SuggestRequest{Patient: p, K: 4})
	if warm2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second cached-path call X-Cache = %q, want HIT", warm2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(firstBody, warmBody) || !bytes.Equal(warmBody, hitBody) {
		t.Fatal("cold, computed and cached bodies must be byte-identical")
	}
}

// TestServeRequestCycleAllocBudget gates the allocations of one full
// cold serve request — handler, batcher, fused scoring, response
// encoding — with caching bypassed and screening off. The budget
// includes the test's own recorder and request plumbing, so the
// serving path itself sits well below it.
func TestServeRequestCycleAllocBudget(t *testing.T) {
	const budget = 120
	sys := system(t)
	s, err := New(sys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	handler := s.Handler()

	p := sys.Data().TestPatients()[0]
	screen := false
	reqBody, _ := json.Marshal(SuggestRequest{Patient: p, K: 4, Screen: &screen})
	run := func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/suggest", bytes.NewReader(reqBody))
		req.Header.Set("Cache-Control", "no-cache")
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	run() // warm pools
	got := testing.AllocsPerRun(20, run)
	if got > budget {
		t.Fatalf("cold serve request cycle allocates %.1f objects, budget %d", got, budget)
	}
	t.Logf("cold serve request cycle: %.1f allocs/op", got)
}

// BenchmarkServeSuggestCold drives one full cold suggest request —
// handler, batcher, fused scoring, encode — per iteration, bypassing
// the result cache. `make profile` runs this under the CPU and heap
// profilers; it is the serve hot path minus the network stack.
func BenchmarkServeSuggestCold(b *testing.B) {
	sys := system(b)
	s, err := New(sys, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	handler := s.Handler()
	screen := false
	reqBody, _ := json.Marshal(SuggestRequest{Patient: sys.Data().TestPatients()[0], K: 4, Screen: &screen})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/suggest", bytes.NewReader(reqBody))
		req.Header.Set("Cache-Control", "no-cache")
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

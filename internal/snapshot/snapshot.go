// Package snapshot provides the low-level binary format shared by the
// model save/load path: a magic header, an explicit format version, a
// small set of typed primitives (integers, floats, strings, slices,
// matrices) and a CRC32 footer that detects truncation and corruption.
//
// The encoding is deterministic — the same values always produce the
// same bytes — which is what lets the round-trip tests demand bitwise
// identity between a saved system and its reload. All multi-byte
// values are little-endian; float64 values are written as their IEEE
// 754 bit patterns, so NaN payloads and signed zeros survive exactly.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"dssddi/internal/mat"
)

// Magic identifies a DSSDDI snapshot stream. It is written before the
// checksummed region, so a reader can cheaply reject foreign files.
const Magic = "dssddi-snapshot\x00"

// Version is the current format version. Readers reject versions they
// do not know; writers always emit the current one.
const Version = 1

// maxLen bounds every length prefix read from the stream, so a corrupt
// or adversarial file cannot make the decoder attempt a giant
// allocation before the checksum is verified.
const maxLen = 1 << 28

// Encoder writes the snapshot format to an underlying writer while
// maintaining the running checksum. Errors are sticky: after the first
// failed write every later call is a no-op and Finish reports the
// error.
type Encoder struct {
	w   *bufio.Writer
	crc hash.Hash32
	err error
	buf [8]byte
}

// NewEncoder starts an encoder on w and writes the magic and version.
func NewEncoder(w io.Writer) *Encoder {
	e := NewRawEncoder(w)
	if _, err := e.w.WriteString(Magic); err != nil {
		e.err = err
		return e
	}
	e.Uint32(Version)
	return e
}

// NewRawEncoder returns an encoder that emits only the primitive
// encoding — no magic, no version, no checksum footer. It exists for
// hashing sections (e.g. the dataset identity digest): stream the
// fields into a hash.Hash and call Flush. Pair with Finish only on
// encoders created by NewEncoder.
func NewRawEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
}

// Flush flushes buffered output without writing the checksum footer
// (for raw encoders). It returns the sticky error, if any.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

func (e *Encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	if _, err := e.w.Write(p); err != nil {
		e.err = err
		return
	}
	e.crc.Write(p)
}

// Uint32 writes a fixed 32-bit unsigned integer.
func (e *Encoder) Uint32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.write(e.buf[:4])
}

// Int writes a signed integer as a fixed 64-bit value.
func (e *Encoder) Int(v int) {
	binary.LittleEndian.PutUint64(e.buf[:8], uint64(int64(v)))
	e.write(e.buf[:8])
}

// Int64 writes a signed 64-bit integer.
func (e *Encoder) Int64(v int64) {
	binary.LittleEndian.PutUint64(e.buf[:8], uint64(v))
	e.write(e.buf[:8])
}

// Bool writes a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	e.buf[0] = 0
	if v {
		e.buf[0] = 1
	}
	e.write(e.buf[:1])
}

// Float writes a float64 as its IEEE 754 bit pattern.
func (e *Encoder) Float(v float64) {
	binary.LittleEndian.PutUint64(e.buf[:8], math.Float64bits(v))
	e.write(e.buf[:8])
}

// String writes a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	if e.err != nil {
		return
	}
	if _, err := e.w.WriteString(s); err != nil {
		e.err = err
		return
	}
	e.crc.Write([]byte(s))
}

// Bytes writes a length-prefixed byte blob.
func (e *Encoder) Bytes(p []byte) {
	e.Int(len(p))
	e.write(p)
}

// Ints writes a length-prefixed []int.
func (e *Encoder) Ints(v []int) {
	e.Int(len(v))
	for _, x := range v {
		e.Int(x)
	}
}

// Floats writes a length-prefixed []float64.
func (e *Encoder) Floats(v []float64) {
	e.Int(len(v))
	for _, x := range v {
		e.Float(x)
	}
}

// Strings writes a length-prefixed []string.
func (e *Encoder) Strings(v []string) {
	e.Int(len(v))
	for _, s := range v {
		e.String(s)
	}
}

// Matrix writes a dense matrix: dimensions followed by the row-major
// backing data. A nil matrix is encoded distinctly and round-trips to
// nil.
func (e *Encoder) Matrix(m *mat.Dense) {
	if m == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(m.Rows())
	e.Int(m.Cols())
	for _, x := range m.Data() {
		e.Float(x)
	}
}

// Finish flushes buffered output, appends the CRC32 footer and returns
// the first error encountered, if any.
func (e *Encoder) Finish() error {
	if e.err != nil {
		return e.err
	}
	binary.LittleEndian.PutUint32(e.buf[:4], e.crc.Sum32())
	if _, err := e.w.Write(e.buf[:4]); err != nil {
		return err
	}
	return e.w.Flush()
}

// Err returns the sticky encoder error.
func (e *Encoder) Err() error { return e.err }

// Fail records a caller-detected error (e.g. unsupported state) as the
// sticky error, so it surfaces through Finish like an I/O failure. The
// first error wins.
func (e *Encoder) Fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Decoder reads the snapshot format. Like the encoder its error is
// sticky; the caller checks Err (or the error of Verify) once after
// reading a section rather than after every field.
type Decoder struct {
	r       *bufio.Reader
	crc     hash.Hash32
	err     error
	version uint32
	buf     [8]byte
}

// NewDecoder starts a decoder on r, checking the magic and reading the
// version (available via Version).
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(d.r, magic); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q: not a dssddi snapshot", magic)
	}
	d.version = d.Uint32()
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: reading version: %w", d.err)
	}
	if d.version == 0 || d.version > Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this build reads <= %d)", d.version, Version)
	}
	return d, nil
}

// Version returns the format version declared by the stream.
func (d *Decoder) Version() int { return int(d.version) }

func (d *Decoder) read(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		d.err = err
		return
	}
	d.crc.Write(p)
}

// Uint32 reads a fixed 32-bit unsigned integer.
func (d *Decoder) Uint32() uint32 {
	d.read(d.buf[:4])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

// Int reads a signed integer written by Encoder.Int.
func (d *Decoder) Int() int {
	d.read(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return int(int64(binary.LittleEndian.Uint64(d.buf[:8])))
}

// Int64 reads a signed 64-bit integer.
func (d *Decoder) Int64() int64 {
	d.read(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(d.buf[:8]))
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool {
	d.read(d.buf[:1])
	return d.err == nil && d.buf[0] != 0
}

// Float reads a float64 bit pattern.
func (d *Decoder) Float() float64 {
	d.read(d.buf[:8])
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[:8]))
}

// length reads and bounds-checks a length prefix.
func (d *Decoder) length(what string) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > maxLen {
		d.err = fmt.Errorf("snapshot: corrupt %s length %d", what, n)
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.length("string")
	if d.err != nil || n == 0 {
		return ""
	}
	p := make([]byte, n)
	d.read(p)
	if d.err != nil {
		return ""
	}
	return string(p)
}

// Bytes reads a length-prefixed byte blob.
func (d *Decoder) Bytes() []byte {
	n := d.length("bytes")
	if d.err != nil {
		return nil
	}
	p := make([]byte, n)
	d.read(p)
	if d.err != nil {
		return nil
	}
	return p
}

// Ints reads a length-prefixed []int.
func (d *Decoder) Ints() []int {
	n := d.length("int slice")
	if d.err != nil {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = d.Int()
	}
	if d.err != nil {
		return nil
	}
	return v
}

// Floats reads a length-prefixed []float64.
func (d *Decoder) Floats() []float64 {
	n := d.length("float slice")
	if d.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.Float()
	}
	if d.err != nil {
		return nil
	}
	return v
}

// FloatsInto reads a length-prefixed []float64 into dst's backing
// store, growing it only when capacity runs out — the reuse-friendly
// form of Floats for load loops that decode many slices into scratch.
// The returned slice aliases dst's array whenever it fits.
func (d *Decoder) FloatsInto(dst []float64) []float64 {
	n := d.length("float slice")
	if d.err != nil {
		return nil
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = d.Float()
	}
	if d.err != nil {
		return nil
	}
	return dst
}

// FloatArena hands out float64 slices carved from large shared blocks,
// amortizing the per-slice allocation of decode loops that retain what
// they read (a checkpoint's per-entry feature vectors, for example:
// thousands of tiny Floats calls become a handful of block
// allocations). Slices obtained from an arena live as long as the
// arena's blocks; the arena never reclaims them individually.
type FloatArena struct {
	block []float64
}

// floatArenaBlock is the allocation granularity of a FloatArena; a
// request larger than the block gets its own exact-sized allocation.
const floatArenaBlock = 16384

// Alloc returns a zeroed slice of n float64s carved from the arena.
func (a *FloatArena) Alloc(n int) []float64 {
	if n > floatArenaBlock {
		return make([]float64, n)
	}
	if len(a.block) < n {
		a.block = make([]float64, floatArenaBlock)
	}
	v := a.block[:n:n]
	a.block = a.block[n:]
	return v
}

// FloatsArena reads a length-prefixed []float64 into arena-backed
// storage — Floats for callers that retain the decoded slice and
// decode many of them.
func (d *Decoder) FloatsArena(a *FloatArena) []float64 {
	n := d.length("float slice")
	if d.err != nil {
		return nil
	}
	v := a.Alloc(n)
	for i := range v {
		v[i] = d.Float()
	}
	if d.err != nil {
		return nil
	}
	return v
}

// Strings reads a length-prefixed []string.
func (d *Decoder) Strings() []string {
	n := d.length("string slice")
	if d.err != nil {
		return nil
	}
	v := make([]string, n)
	for i := range v {
		v[i] = d.String()
	}
	if d.err != nil {
		return nil
	}
	return v
}

// Matrix reads a dense matrix written by Encoder.Matrix (nil-aware).
func (d *Decoder) Matrix() *mat.Dense {
	if !d.Bool() {
		return nil
	}
	rows, cols := d.Int(), d.Int()
	if d.err != nil {
		return nil
	}
	if rows < 0 || cols < 0 || (cols != 0 && rows > maxLen/cols) {
		d.err = fmt.Errorf("snapshot: corrupt matrix dimensions %dx%d", rows, cols)
		return nil
	}
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = d.Float()
	}
	if d.err != nil {
		return nil
	}
	return mat.NewFrom(rows, cols, data)
}

// Err returns the sticky decoder error.
func (d *Decoder) Err() error { return d.err }

// Fail records a caller-detected validation error (e.g. inconsistent
// decoded values) as the sticky error. The first error wins.
func (d *Decoder) Fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Verify consumes the CRC32 footer and checks it against the running
// checksum of everything read so far. It must be called exactly once,
// after the final field.
func (d *Decoder) Verify() error {
	if d.err != nil {
		return d.err
	}
	want := d.crc.Sum32() // snapshot before the footer bytes perturb it
	if _, err := io.ReadFull(d.r, d.buf[:4]); err != nil {
		return fmt.Errorf("snapshot: reading checksum footer: %w", err)
	}
	got := binary.LittleEndian.Uint32(d.buf[:4])
	if got != want {
		return fmt.Errorf("snapshot: checksum mismatch (stored %08x, computed %08x): file is corrupt or truncated", got, want)
	}
	return nil
}

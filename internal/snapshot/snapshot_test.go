package snapshot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dssddi/internal/mat"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Int(-42)
	e.Int64(1 << 40)
	e.Bool(true)
	e.Bool(false)
	e.Float(math.Pi)
	e.Float(math.Copysign(0, -1))
	e.Float(math.Inf(-1))
	e.String("hello, snapshot")
	e.String("")
	e.Bytes([]byte{1, 2, 3})
	e.Ints([]int{7, -8, 9})
	e.Ints(nil)
	e.Floats([]float64{1.5, -2.25})
	e.Strings([]string{"a", "", "bc"})
	m := mat.New(2, 3)
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		m.Data()[i] = v
	}
	e.Matrix(m)
	e.Matrix(nil)
	if err := e.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if d.Version() != Version {
		t.Fatalf("version %d, want %d", d.Version(), Version)
	}
	if got := d.Int(); got != -42 {
		t.Fatalf("Int: %d", got)
	}
	if got := d.Int64(); got != 1<<40 {
		t.Fatalf("Int64: %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := d.Float(); got != math.Pi {
		t.Fatalf("Float: %v", got)
	}
	if got := d.Float(); !math.Signbit(got) || got != 0 {
		t.Fatalf("negative zero lost: %v", got)
	}
	if got := d.Float(); !math.IsInf(got, -1) {
		t.Fatalf("-Inf lost: %v", got)
	}
	if got := d.String(); got != "hello, snapshot" {
		t.Fatalf("String: %q", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty String: %q", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes: %v", got)
	}
	ints := d.Ints()
	if len(ints) != 3 || ints[0] != 7 || ints[1] != -8 || ints[2] != 9 {
		t.Fatalf("Ints: %v", ints)
	}
	if got := d.Ints(); len(got) != 0 {
		t.Fatalf("nil Ints: %v", got)
	}
	fs := d.Floats()
	if len(fs) != 2 || fs[0] != 1.5 || fs[1] != -2.25 {
		t.Fatalf("Floats: %v", fs)
	}
	ss := d.Strings()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "bc" {
		t.Fatalf("Strings: %v", ss)
	}
	got := d.Matrix()
	if got.Rows() != 2 || got.Cols() != 3 {
		t.Fatalf("Matrix shape %dx%d", got.Rows(), got.Cols())
	}
	for i, v := range m.Data() {
		if got.Data()[i] != v {
			t.Fatalf("Matrix data[%d] = %v, want %v", i, got.Data()[i], v)
		}
	}
	if d.Matrix() != nil {
		t.Fatal("nil Matrix must round-trip to nil")
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestEncodingIsDeterministic(t *testing.T) {
	encode := func() []byte {
		var buf bytes.Buffer
		e := NewEncoder(&buf)
		e.Ints([]int{1, 2, 3})
		e.String("x")
		e.Float(0.1)
		if err := e.Finish(); err != nil {
			t.Fatalf("Finish: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(), encode()) {
		t.Fatal("identical values must produce identical bytes")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := NewDecoder(strings.NewReader("GIF89a not a snapshot at all")); err == nil {
		t.Fatal("foreign file must be rejected")
	}
}

func TestUnsupportedVersionRejected(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Int(1)
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(Magic)] = 99 // bump the little-endian version field
	if _, err := NewDecoder(bytes.NewReader(raw)); err == nil ||
		!strings.Contains(err.Error(), "unsupported format version") {
		t.Fatalf("future version must be rejected, got %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Floats([]float64{1, 2, 3, 4})
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-10] ^= 0x40 // flip a payload bit

	d, err := NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	d.Floats()
	if err := d.Verify(); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("bit flip must fail Verify, got %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Matrix(mat.New(4, 4))
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()/2]
	d, err := NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	d.Matrix()
	if d.Err() == nil {
		if err := d.Verify(); err == nil {
			t.Fatal("truncated stream must not verify")
		}
	}
}

func TestGiantLengthRejectedBeforeAllocation(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	e.Int(1 << 60) // masquerades as a slice length
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Floats(); got != nil {
		t.Fatalf("corrupt length must yield nil, got len %d", len(got))
	}
	if d.Err() == nil || !strings.Contains(d.Err().Error(), "corrupt") {
		t.Fatalf("want corrupt-length error, got %v", d.Err())
	}
}

// TestFloatsIntoAndArena covers the allocation-reusing decode variants:
// FloatsInto fills caller storage when it fits (allocating only on
// growth), FloatsArena carves retained slices out of shared blocks, and
// both read exactly the bits Floats would.
func TestFloatsIntoAndArena(t *testing.T) {
	vals := [][]float64{
		{1.5, -2.25, math.Pi},
		nil,
		{math.Copysign(0, -1)},
		make([]float64, 100),
	}
	for i := range vals[3] {
		vals[3][i] = float64(i) * 0.75
	}
	var buf bytes.Buffer
	e := NewEncoder(&buf)
	for i := 0; i < 3; i++ {
		for _, v := range vals {
			e.Floats(v)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	check := func(what string, got, want []float64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
		}
		for j := range got {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("%s: element %d: %v != %v", what, j, got[j], want[j])
			}
		}
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	for _, want := range vals {
		check("Floats", d.Floats(), want)
	}
	scratch := make([]float64, 0, 128)
	for _, want := range vals {
		got := d.FloatsInto(scratch)
		check("FloatsInto", got, want)
		if len(want) > 0 && len(want) <= cap(scratch) && &got[0] != &scratch[:1][0] {
			t.Fatal("FloatsInto allocated despite sufficient capacity")
		}
	}
	var arena FloatArena
	got := make([][]float64, len(vals))
	for i, want := range vals {
		got[i] = d.FloatsArena(&arena)
		check("FloatsArena", got[i], want)
	}
	// Arena slices must be independent (full-capacity slices of one
	// block): appending to one cannot clobber its neighbor.
	got[0] = append(got[0], 99)
	check("FloatsArena neighbor after append", got[2], vals[2])
	if err := d.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestFloatArenaAmortizes pins the arena's purpose: decoding many
// retained slices costs a bounded number of block allocations, not one
// per slice.
func TestFloatArenaAmortizes(t *testing.T) {
	var arena FloatArena
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < 1000; i++ {
			_ = arena.Alloc(8)
		}
	})
	if allocs > 2 {
		t.Fatalf("1000 arena allocs of 8 floats cost %.0f heap allocations, want <= 2", allocs)
	}
	if big := arena.Alloc(floatArenaBlock + 1); len(big) != floatArenaBlock+1 {
		t.Fatalf("oversized request returned %d floats", len(big))
	}
}

package sparse

import "math"

// Edge is an undirected edge with an optional weight, used by the
// adjacency constructors.
type Edge struct {
	U, V   int
	Weight float64
}

// SymNormAdjacency builds the symmetrically normalised adjacency matrix
// D^{-1/2} A D^{-1/2} of an undirected graph on n nodes, the propagation
// operator used by LightGCN/MDGCN (Eq. 11-12 of the paper). Weights are
// taken as |Weight| for degree purposes; self-loops are not added.
func SymNormAdjacency(n int, edges []Edge) *CSR {
	deg := make([]float64, n)
	for _, e := range edges {
		w := math.Abs(e.Weight)
		if w == 0 {
			w = 1
		}
		deg[e.U] += w
		deg[e.V] += w
	}
	inv := make([]float64, n)
	for i, d := range deg {
		if d > 0 {
			inv[i] = 1 / math.Sqrt(d)
		}
	}
	b := NewBuilder(n, n)
	for _, e := range edges {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		b.Add(e.U, e.V, w*inv[e.U]*inv[e.V])
		b.Add(e.V, e.U, w*inv[e.U]*inv[e.V])
	}
	return b.Build()
}

// MeanAdjacency builds the row-normalised (mean-aggregator) adjacency
// matrix of an undirected graph: entry (u,v) = w/deg(u). This is the
// neighbourhood-mean operator used by the paper's GIN variant (Eq. 1).
func MeanAdjacency(n int, edges []Edge) *CSR {
	deg := make([]float64, n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	b := NewBuilder(n, n)
	for _, e := range edges {
		w := e.Weight
		if w == 0 {
			w = 1
		}
		if deg[e.U] > 0 {
			b.Add(e.U, e.V, w/deg[e.U])
		}
		if deg[e.V] > 0 {
			b.Add(e.V, e.U, w/deg[e.V])
		}
	}
	return b.Build()
}

// BipartiteNorm builds the symmetrically normalised propagation
// operators of a bipartite graph with m "left" nodes (patients) and n
// "right" nodes (drugs). It returns (L2R, R2L): L2R is m x n and maps
// right-node features to left nodes (Eq. 11), R2L is n x m and maps left
// features to right nodes (Eq. 12). links[i] lists the right-node
// neighbours of left node i.
func BipartiteNorm(m, n int, links [][]int) (l2r, r2l *CSR) {
	degL := make([]float64, m)
	degR := make([]float64, n)
	for i, vs := range links {
		degL[i] = float64(len(vs))
		for _, v := range vs {
			degR[v]++
		}
	}
	bl := NewBuilder(m, n)
	br := NewBuilder(n, m)
	for i, vs := range links {
		for _, v := range vs {
			w := 1 / math.Sqrt(degL[i]*degR[v])
			bl.Add(i, v, w)
			br.Add(v, i, w)
		}
	}
	return bl.Build(), br.Build()
}

package sparse

import (
	"math/rand"
	"testing"

	"dssddi/internal/mat"
)

// BenchmarkMulDenseInto times the SpMM hot path (adjacency times
// feature matrix) at a GCN-layer-like shape, serial vs pooled.
func BenchmarkMulDenseInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := randCSR(rng, 4096, 4096, 0.002) // ~8 nnz per row
	x := randMat(rng, 4096, 64)
	dst := mat.New(c.Rows(), x.Cols())
	for _, w := range []struct {
		name string
		n    int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(w.name, func(b *testing.B) {
			mat.SetWorkers(w.n)
			defer mat.SetWorkers(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.MulDenseInto(dst, x)
			}
		})
	}
}

// BenchmarkMulDenseAddInto times the fused gradient-side SpMM.
func BenchmarkMulDenseAddInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := randCSR(rng, 4096, 4096, 0.002)
	x := randMat(rng, 4096, 64)
	dst := mat.New(c.Rows(), x.Cols())
	for _, w := range []struct {
		name string
		n    int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(w.name, func(b *testing.B) {
			mat.SetWorkers(w.n)
			defer mat.SetWorkers(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.MulDenseAddInto(dst, x)
			}
		})
	}
}

package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"dssddi/internal/mat"
)

func randCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	b := NewBuilder(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				b.Add(r, c, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

func randMat(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.New(r, c)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func denseMaxDiff(t *testing.T, a, b *mat.Dense) float64 {
	t.Helper()
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	var mx float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if d := math.Abs(ad[i] - bd[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// TestMulDenseParallelMatchesSerial checks the row-partitioned SpMM is
// bitwise identical to the serial path across shapes, including empty
// and single-row operators.
func TestMulDenseParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []struct {
		name       string
		rows, cols int
		dense      int
		density    float64
	}{
		{"empty", 0, 0, 0, 0},
		{"singleRow", 1, 40, 16, 0.3},
		{"tall", 400, 30, 8, 0.1},
		{"wide", 30, 400, 64, 0.05},
		{"dense", 120, 120, 48, 0.5},
		{"allZeroRows", 50, 50, 8, 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := randCSR(rng, tc.rows, tc.cols, tc.density)
			x := randMat(rng, tc.cols, tc.dense)
			acc := randMat(rng, tc.rows, tc.dense)

			run := func(f func() *mat.Dense) (s, p *mat.Dense) {
				mat.SetWorkers(1)
				s = f()
				mat.SetWorkers(4)
				p = f()
				mat.SetWorkers(0)
				return
			}

			s, p := run(func() *mat.Dense { return c.MulDense(x) })
			if d := denseMaxDiff(t, s, p); d != 0 {
				t.Errorf("MulDense: serial vs parallel diff %g", d)
			}
			s, p = run(func() *mat.Dense {
				dst := acc.Clone()
				c.MulDenseAddInto(dst, x)
				return dst
			})
			if d := denseMaxDiff(t, s, p); d != 0 {
				t.Errorf("MulDenseAddInto: serial vs parallel diff %g", d)
			}
		})
	}
}

// TestMulDenseAddIntoAccumulates checks the fused add actually adds.
func TestMulDenseAddIntoAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randCSR(rng, 60, 40, 0.2)
	x := randMat(rng, 40, 16)
	base := randMat(rng, 60, 16)

	want := base.Clone()
	want.AddScaled(c.MulDense(x), 1)

	got := base.Clone()
	c.MulDenseAddInto(got, x)
	if d := denseMaxDiff(t, want, got); d > 1e-12 {
		t.Fatalf("MulDenseAddInto differs from MulDense+Add by %g", d)
	}
}

// TestConcurrentMulDenseInto hammers SpMM from many goroutines sharing
// the operator and input (distinct outputs). Run with -race in CI.
func TestConcurrentMulDenseInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := randCSR(rng, 200, 150, 0.1)
	x := randMat(rng, 150, 48)
	want := c.MulDense(x)

	mat.SetWorkers(4)
	defer mat.SetWorkers(0)
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := mat.New(c.Rows(), x.Cols())
			for iter := 0; iter < 20; iter++ {
				c.MulDenseInto(dst, x)
			}
			if d := denseMaxDiff(t, want, dst); d != 0 {
				t.Errorf("concurrent MulDenseInto diverged by %g", d)
			}
		}()
	}
	wg.Wait()
}

// Package sparse provides CSR (compressed sparse row) matrices used to
// express graph aggregation (adjacency times feature matrix) in the GNN
// stack. Matrices are immutable after construction; build them with a
// Builder or one of the adjacency constructors.
package sparse

import (
	"fmt"
	"sort"
	"sync"

	"dssddi/internal/mat"
	"dssddi/internal/par"
)

// CSR is an immutable sparse matrix in compressed sparse row format.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Rows returns the number of rows.
func (c *CSR) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *CSR) Cols() int { return c.cols }

// NNZ returns the number of stored (structurally non-zero) entries.
func (c *CSR) NNZ() int { return len(c.vals) }

// Builder accumulates COO triplets and finalises them into a CSR matrix.
// Duplicate (row, col) entries are summed.
type Builder struct {
	rows, cols int
	entries    []entry
}

type entry struct {
	r, c int
	v    float64
}

// NewBuilder returns a builder for a rows x cols sparse matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add records a value at (r, c). Duplicates are summed at Build time.
func (b *Builder) Add(r, c int, v float64) {
	if r < 0 || r >= b.rows || c < 0 || c >= b.cols {
		panic(fmt.Sprintf("sparse: entry (%d,%d) out of range %dx%d", r, c, b.rows, b.cols))
	}
	b.entries = append(b.entries, entry{r, c, v})
}

// Build finalises the accumulated entries into a CSR matrix.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(i, j int) bool {
		if b.entries[i].r != b.entries[j].r {
			return b.entries[i].r < b.entries[j].r
		}
		return b.entries[i].c < b.entries[j].c
	})
	// Merge duplicates.
	merged := b.entries[:0]
	for _, e := range b.entries {
		if n := len(merged); n > 0 && merged[n-1].r == e.r && merged[n-1].c == e.c {
			merged[n-1].v += e.v
			continue
		}
		merged = append(merged, e)
	}
	c := &CSR{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: make([]int, b.rows+1),
		colIdx: make([]int, len(merged)),
		vals:   make([]float64, len(merged)),
	}
	for i, e := range merged {
		c.rowPtr[e.r+1]++
		c.colIdx[i] = e.c
		c.vals[i] = e.v
	}
	for i := 1; i <= b.rows; i++ {
		c.rowPtr[i] += c.rowPtr[i-1]
	}
	return c
}

// RowNNZ returns the number of stored entries in row r.
func (c *CSR) RowNNZ(r int) int { return c.rowPtr[r+1] - c.rowPtr[r] }

// Row iterates over the stored entries of row r, calling f(col, val).
func (c *CSR) Row(r int, f func(col int, val float64)) {
	for i := c.rowPtr[r]; i < c.rowPtr[r+1]; i++ {
		f(c.colIdx[i], c.vals[i])
	}
}

// At returns the value at (r, col); zero for entries not stored.
func (c *CSR) At(r, col int) float64 {
	lo, hi := c.rowPtr[r], c.rowPtr[r+1]
	i := sort.SearchInts(c.colIdx[lo:hi], col)
	if lo+i < hi && c.colIdx[lo+i] == col {
		return c.vals[lo+i]
	}
	return 0
}

// MulDense computes c * x where x is dense, returning a new dense matrix.
func (c *CSR) MulDense(x *mat.Dense) *mat.Dense {
	if c.cols != x.Rows() {
		panic(fmt.Sprintf("sparse: MulDense inner mismatch %dx%d * %dx%d", c.rows, c.cols, x.Rows(), x.Cols()))
	}
	out := mat.New(c.rows, x.Cols())
	c.MulDenseInto(out, x)
	return out
}

// rowChunk returns the minimum rows per parallel task so each task
// carries a useful amount of SpMM work (average nnz per row times the
// dense width).
func (c *CSR) rowChunk(xCols int) int {
	if c.rows == 0 {
		return 1
	}
	perRow := (len(c.vals)*xCols)/c.rows + 1
	g := 32768 / perRow
	if g < 1 {
		g = 1
	}
	return g
}

// spmmTask carries one SpMM invocation through the worker pool.
// Instances are recycled via spmmPool so the kernels allocate nothing
// per call; the accumulate variant borrows per-chunk scratch rows from
// the shared pool in internal/mat.
type spmmTask struct {
	c      *CSR
	dst, x *mat.Dense
	add    bool
}

var spmmPool = sync.Pool{New: func() any { return new(spmmTask) }}

// Chunk implements par.Worker.
func (t *spmmTask) Chunk(lo, hi int) {
	c, dst, x := t.c, t.dst, t.x
	if !t.add {
		for r := lo; r < hi; r++ {
			drow := dst.Row(r)
			for j := range drow {
				drow[j] = 0
			}
			for i := c.rowPtr[r]; i < c.rowPtr[r+1]; i++ {
				v := c.vals[i]
				xrow := x.Row(c.colIdx[i])
				for j, xv := range xrow {
					drow[j] += v * xv
				}
			}
		}
		return
	}
	sp := mat.GetScratch(x.Cols())
	scratch := *sp
	for r := lo; r < hi; r++ {
		for j := range scratch {
			scratch[j] = 0
		}
		for i := c.rowPtr[r]; i < c.rowPtr[r+1]; i++ {
			v := c.vals[i]
			xrow := x.Row(c.colIdx[i])
			for j, xv := range xrow {
				scratch[j] += v * xv
			}
		}
		drow := dst.Row(r)
		for j, sv := range scratch {
			drow[j] += sv
		}
	}
	mat.PutScratch(sp)
}

func (c *CSR) runSpMM(dst, x *mat.Dense, add bool) {
	t := spmmPool.Get().(*spmmTask)
	t.c, t.dst, t.x, t.add = c, dst, x, add
	par.Run(c.rows, c.rowChunk(x.Cols()), t)
	*t = spmmTask{}
	spmmPool.Put(t)
}

// MulDenseInto computes dst = c * x. dst must be c.rows x x.Cols().
// Rows are partitioned across the shared worker pool; each goroutine
// writes only its own row range (no locks), so the output is
// deterministic and bitwise identical for any worker count.
func (c *CSR) MulDenseInto(dst, x *mat.Dense) {
	if c.cols != x.Rows() || dst.Rows() != c.rows || dst.Cols() != x.Cols() {
		panic("sparse: MulDenseInto shape mismatch")
	}
	c.runSpMM(dst, x, false)
}

// MulDenseAddInto accumulates dst += c * x — the fused form of the
// SpMM gradient update (dX += sᵀ·dOut) that skips the temporary
// product matrix. Each row's product is built in a scratch row and
// added to dst with one add per element, matching the
// MulDense-then-AddScaled numerics bitwise.
func (c *CSR) MulDenseAddInto(dst, x *mat.Dense) {
	if c.cols != x.Rows() || dst.Rows() != c.rows || dst.Cols() != x.Cols() {
		panic("sparse: MulDenseAddInto shape mismatch")
	}
	c.runSpMM(dst, x, true)
}

// T returns the transpose of c as a new CSR matrix.
func (c *CSR) T() *CSR {
	b := NewBuilder(c.cols, c.rows)
	for r := 0; r < c.rows; r++ {
		for i := c.rowPtr[r]; i < c.rowPtr[r+1]; i++ {
			b.Add(c.colIdx[i], r, c.vals[i])
		}
	}
	return b.Build()
}

// ToDense expands c into a dense matrix (intended for tests and small
// graphs only).
func (c *CSR) ToDense() *mat.Dense {
	d := mat.New(c.rows, c.cols)
	for r := 0; r < c.rows; r++ {
		c.Row(r, func(col int, v float64) { d.Set(r, col, v) })
	}
	return d
}

package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dssddi/internal/mat"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1, 2)
	b.Add(2, 3, 5)
	b.Add(0, 1, 3) // duplicate: summed
	c := b.Build()
	if c.Rows() != 3 || c.Cols() != 4 {
		t.Fatalf("shape %dx%d", c.Rows(), c.Cols())
	}
	if c.NNZ() != 2 {
		t.Fatalf("NNZ=%d, want 2 (duplicates merged)", c.NNZ())
	}
	if c.At(0, 1) != 5 {
		t.Fatalf("At(0,1)=%v, want 5", c.At(0, 1))
	}
	if c.At(1, 1) != 0 {
		t.Fatalf("missing entry should read 0, got %v", c.At(1, 1))
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestRowIteration(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(1, 0, 1)
	b.Add(1, 2, 2)
	c := b.Build()
	if c.RowNNZ(0) != 0 || c.RowNNZ(1) != 2 {
		t.Fatalf("RowNNZ wrong: %d %d", c.RowNNZ(0), c.RowNNZ(1))
	}
	var cols []int
	var vals []float64
	c.Row(1, func(col int, v float64) { cols = append(cols, col); vals = append(vals, v) })
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[1] != 2 {
		t.Fatalf("Row iteration wrong: %v %v", cols, vals)
	}
}

func TestMulDenseAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		b := NewBuilder(r, k)
		for e := 0; e < r*k/2+1; e++ {
			b.Add(rng.Intn(r), rng.Intn(k), rng.NormFloat64())
		}
		s := b.Build()
		x := mat.RandNormal(rng, k, c, 1)
		got := s.MulDense(x)
		want := mat.MatMul(s.ToDense(), x)
		for i, v := range got.Data() {
			if math.Abs(v-want.Data()[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 2, 7)
	b.Add(1, 0, -1)
	ct := b.Build().T()
	if ct.Rows() != 3 || ct.Cols() != 2 {
		t.Fatalf("T shape %dx%d", ct.Rows(), ct.Cols())
	}
	if ct.At(2, 0) != 7 || ct.At(0, 1) != -1 {
		t.Fatal("transpose values wrong")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder(5, 7)
	for e := 0; e < 12; e++ {
		b.Add(rng.Intn(5), rng.Intn(7), rng.NormFloat64())
	}
	c := b.Build()
	ctt := c.T().T()
	d1, d2 := c.ToDense(), ctt.ToDense()
	for i, v := range d1.Data() {
		if v != d2.Data()[i] {
			t.Fatal("TT != identity")
		}
	}
}

func TestSymNormAdjacency(t *testing.T) {
	// Path graph 0-1-2: deg = [1,2,1].
	a := SymNormAdjacency(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	want01 := 1 / math.Sqrt(1*2)
	if math.Abs(a.At(0, 1)-want01) > 1e-12 || math.Abs(a.At(1, 0)-want01) > 1e-12 {
		t.Fatalf("norm adj wrong: %v", a.At(0, 1))
	}
	if a.At(0, 0) != 0 {
		t.Fatal("no self loops expected")
	}
	// Symmetry.
	if math.Abs(a.At(1, 2)-a.At(2, 1)) > 1e-12 {
		t.Fatal("should be symmetric")
	}
}

func TestSymNormAdjacencyIsolatedNode(t *testing.T) {
	a := SymNormAdjacency(3, []Edge{{U: 0, V: 1}})
	// Node 2 is isolated; its row must be all zero and no NaNs anywhere.
	for j := 0; j < 3; j++ {
		if v := a.At(2, j); v != 0 || math.IsNaN(v) {
			t.Fatalf("isolated node row must be 0, got %v", v)
		}
	}
}

func TestMeanAdjacencyRowsSumToOne(t *testing.T) {
	edges := []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}}
	a := MeanAdjacency(3, edges)
	for r := 0; r < 3; r++ {
		var sum float64
		a.Row(r, func(_ int, v float64) { sum += v })
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v, want 1", r, sum)
		}
	}
}

func TestMeanAdjacencySignedWeights(t *testing.T) {
	// A signed edge keeps its sign but is scaled by 1/deg.
	a := MeanAdjacency(2, []Edge{{U: 0, V: 1, Weight: -1}})
	if a.At(0, 1) != -1 {
		t.Fatalf("signed mean adjacency wrong: %v", a.At(0, 1))
	}
}

func TestBipartiteNorm(t *testing.T) {
	// 2 patients, 3 drugs; patient 0 takes drugs {0,1}, patient 1 takes {1}.
	l2r, r2l := BipartiteNorm(2, 3, [][]int{{0, 1}, {1}})
	if l2r.Rows() != 2 || l2r.Cols() != 3 || r2l.Rows() != 3 || r2l.Cols() != 2 {
		t.Fatal("shapes wrong")
	}
	// Drug 1 has degree 2, patient 0 degree 2 -> weight 1/2.
	if math.Abs(l2r.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("l2r(0,1)=%v, want 0.5", l2r.At(0, 1))
	}
	// The two operators are transposes of each other.
	d1 := l2r.ToDense()
	d2 := r2l.ToDense().T()
	for i, v := range d1.Data() {
		if math.Abs(v-d2.Data()[i]) > 1e-12 {
			t.Fatal("l2r and r2l should be mutual transposes")
		}
	}
}

func TestBipartiteNormEmptyPatient(t *testing.T) {
	l2r, _ := BipartiteNorm(2, 2, [][]int{{}, {0}})
	for j := 0; j < 2; j++ {
		if v := l2r.At(0, j); v != 0 || math.IsNaN(v) {
			t.Fatalf("patient with no links should have zero row, got %v", v)
		}
	}
}

// Package steiner implements Mehlhorn's 2-approximation for the Steiner
// tree problem on weighted undirected graphs (Information Processing
// Letters, 1988). The Medical Support module uses it to connect the
// suggested drugs inside the DDI graph before growing the dense
// community around them.
package steiner

import (
	"container/heap"
	"math"
	"sort"

	"dssddi/internal/graph"
)

// WeightFunc returns the positive weight of the edge {u, v}. The
// community-search caller supplies the "truss distance" here.
type WeightFunc func(u, v int) float64

// Tree is a set of edges forming an (approximate) Steiner tree.
type Tree struct {
	Edges [][2]int
	Nodes map[int]bool
	Cost  float64
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	node int
	dist float64
}

type pq []item

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(item)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// Approximate computes an approximate minimum Steiner tree of g
// spanning the terminal set. It runs a multi-source Dijkstra to build
// the Voronoi partition around terminals, forms the induced terminal
// distance graph, takes its MST, and expands MST edges back into
// shortest paths (Mehlhorn's construction). Returns nil when the
// terminals are not all connected in g.
func Approximate(g *graph.Undirected, terminals []int, w WeightFunc) *Tree {
	if len(terminals) == 0 {
		return &Tree{Nodes: map[int]bool{}}
	}
	if len(terminals) == 1 {
		return &Tree{Nodes: map[int]bool{terminals[0]: true}}
	}
	n := g.N()
	dist := make([]float64, n)
	owner := make([]int, n) // terminal index owning each node's Voronoi cell
	parent := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		owner[i] = -1
		parent[i] = -1
	}
	h := &pq{}
	for ti, t := range terminals {
		dist[t] = 0
		owner[t] = ti
		heap.Push(h, item{t, 0})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(item)
		u := it.node
		if it.dist > dist[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			d := dist[u] + w(u, v)
			if d < dist[v] {
				dist[v] = d
				owner[v] = owner[u]
				parent[v] = u
				heap.Push(h, item{v, d})
			}
		}
	}

	// Terminal distance graph: for each edge crossing Voronoi cells,
	// candidate terminal-terminal distance = dist[u] + w + dist[v].
	best := make(map[[2]int]cross)
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		a, b := owner[u], owner[v]
		if a == -1 || b == -1 || a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		d := dist[u] + w(u, v) + dist[v]
		k := [2]int{a, b}
		if c, ok := best[k]; !ok || d < c.d {
			best[k] = cross{a, b, u, v, d}
		}
	}

	// Kruskal MST over the terminal distance graph.
	crosses := make([]cross, 0, len(best))
	for _, c := range best {
		crosses = append(crosses, c)
	}
	sortCrosses(crosses)
	uf := newUnionFind(len(terminals))
	treeEdges := make(map[[2]int]bool)
	nodes := make(map[int]bool)
	var cost float64
	for _, t := range terminals {
		nodes[t] = true
	}
	joined := 1
	for _, c := range crosses {
		if !uf.union(c.a, c.b) {
			continue
		}
		joined++
		// Expand: path from u back to its terminal, edge (u,v), path
		// from v back to its terminal.
		cost += addPath(g, parent, c.u, treeEdges, nodes, w)
		cost += addPath(g, parent, c.v, treeEdges, nodes, w)
		treeEdges[ekey(c.u, c.v)] = true
		nodes[c.u] = true
		nodes[c.v] = true
		cost += w(c.u, c.v)
	}
	if joined != len(terminals) {
		return nil // terminals not mutually reachable
	}
	tr := &Tree{Nodes: nodes, Cost: cost}
	for e := range treeEdges {
		tr.Edges = append(tr.Edges, e)
	}
	sortEdges(tr.Edges)
	return tr
}

// addPath walks the Dijkstra parent pointers from x to its Voronoi
// terminal, adding edges to the tree; returns the added weight.
func addPath(g *graph.Undirected, parent []int, x int, edges map[[2]int]bool, nodes map[int]bool, w WeightFunc) float64 {
	var added float64
	for parent[x] != -1 {
		p := parent[x]
		k := ekey(x, p)
		if !edges[k] {
			edges[k] = true
			added += w(x, p)
		}
		nodes[x] = true
		nodes[p] = true
		x = p
	}
	return added
}

func ekey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// cross is a candidate connection between two terminal Voronoi cells.
type cross struct {
	a, b int // terminal indices, a < b
	u, v int // the crossing edge
	d    float64
}

func sortCrosses(cs []cross) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].d != cs[j].d {
			return cs[i].d < cs[j].d
		}
		if cs[i].a != cs[j].a {
			return cs[i].a < cs[j].a
		}
		return cs[i].b < cs[j].b
	})
}

func sortEdges(es [][2]int) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && lessEdge(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func lessEdge(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

type unionFind struct{ parent, rank []int }

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

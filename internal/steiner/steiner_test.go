package steiner

import (
	"math/rand"
	"testing"

	"dssddi/internal/graph"
)

func unitWeight(u, v int) float64 { return 1 }

func TestSingleTerminal(t *testing.T) {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1)
	tr := Approximate(g, []int{2}, unitWeight)
	if tr == nil || len(tr.Edges) != 0 || !tr.Nodes[2] {
		t.Fatalf("single terminal tree wrong: %+v", tr)
	}
}

func TestTwoTerminalsShortestPath(t *testing.T) {
	// Path 0-1-2-3 plus shortcut 0-4-3 of same hop count but we weight
	// the shortcut cheaper.
	g := graph.NewUndirected(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 4)
	g.AddEdge(4, 3)
	w := func(u, v int) float64 {
		if (u == 0 && v == 4) || (u == 4 && v == 0) || (u == 4 && v == 3) || (u == 3 && v == 4) {
			return 0.5
		}
		return 1
	}
	tr := Approximate(g, []int{0, 3}, w)
	if tr == nil {
		t.Fatal("no tree found")
	}
	if !tr.Nodes[4] || tr.Nodes[1] || tr.Nodes[2] {
		t.Fatalf("should route through 4, got nodes %v", tr.Nodes)
	}
	if tr.Cost != 1.0 {
		t.Fatalf("cost %v, want 1.0", tr.Cost)
	}
}

func TestStarSteiner(t *testing.T) {
	// Terminals 1,2,3 all attached to hub 0: the optimum Steiner tree
	// must include the non-terminal hub.
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	tr := Approximate(g, []int{1, 2, 3}, unitWeight)
	if tr == nil {
		t.Fatal("no tree")
	}
	if !tr.Nodes[0] {
		t.Fatal("hub must be a Steiner node")
	}
	if len(tr.Edges) != 3 || tr.Cost != 3 {
		t.Fatalf("expected 3 unit edges, got %d cost %v", len(tr.Edges), tr.Cost)
	}
}

func TestDisconnectedTerminals(t *testing.T) {
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if tr := Approximate(g, []int{0, 2}, unitWeight); tr != nil {
		t.Fatalf("expected nil for disconnected terminals, got %+v", tr)
	}
}

func TestTreeIsConnectedAndSpansTerminals(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(10)
		g := graph.NewUndirected(n)
		// Ring to guarantee connectivity, plus random chords.
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		var terms []int
		seen := map[int]bool{}
		for len(terms) < 4 {
			x := rng.Intn(n)
			if !seen[x] {
				seen[x] = true
				terms = append(terms, x)
			}
		}
		tr := Approximate(g, terms, unitWeight)
		if tr == nil {
			t.Fatalf("seed %d: expected a tree", seed)
		}
		// Build subgraph of tree edges and check terminals connected.
		sub := graph.NewUndirected(n)
		for _, e := range tr.Edges {
			sub.AddEdge(e[0], e[1])
		}
		if !sub.Connected(terms) {
			t.Fatalf("seed %d: terminals not connected in tree", seed)
		}
		// A tree on k nodes has exactly k-1 edges (acyclicity check).
		if len(tr.Edges) > len(tr.Nodes)-1 {
			t.Fatalf("seed %d: %d edges on %d nodes — contains a cycle",
				seed, len(tr.Edges), len(tr.Nodes))
		}
	}
}

func Test2ApproximationOnKnownInstance(t *testing.T) {
	// Classic instance: square 0-1-2-3 with center 4 connected to all
	// corners with weight 1; corner-corner edges weight 2. Terminals =
	// corners. OPT = 4 (star through center). Mehlhorn must return <= 8.
	g := graph.NewUndirected(5)
	for c := 0; c < 4; c++ {
		g.AddEdge(c, 4)
		g.AddEdge(c, (c+1)%4)
	}
	w := func(u, v int) float64 {
		if u == 4 || v == 4 {
			return 1
		}
		return 2
	}
	tr := Approximate(g, []int{0, 1, 2, 3}, w)
	if tr == nil {
		t.Fatal("no tree")
	}
	if tr.Cost > 8 {
		t.Fatalf("cost %v exceeds 2-approximation bound 8", tr.Cost)
	}
}

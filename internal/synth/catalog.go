// Package synth generates the synthetic datasets that stand in for the
// paper's non-redistributable sources: the Hong Kong Chronic Disease
// Study cohort, the DrugCombDB drug-drug interactions and the MIMIC-III
// visit records. See DESIGN.md ("Data substitutions") for how each
// generator preserves the statistical structure the models exercise.
package synth

// Disease enumerates the chronic conditions of the study cohort
// (Fig. 2 and Fig. 3 of the paper).
type Disease int

// The 14 named chronic diseases plus the catch-all bucket.
const (
	Hypertension Disease = iota
	CardiovascularEvents
	Type2Diabetes
	GastricUlcer
	Arthritis
	ProstaticHyperplasia
	DiabeticNephropathy
	MyocardialInfarction
	Asthma
	ErosiveEsophagitis
	Seizures
	EyeDiseases
	AnxietyDisorder
	Edema
	Thromboembolism
	OtherDiseases
	NumDiseases // sentinel
)

var diseaseNames = [NumDiseases]string{
	"Hypertension", "Cardiovascular Events", "Type 2 Diabetes Mellitus",
	"Gastric or Duodenal Ulcer", "Arthritis", "Prostatic Hyperplasia",
	"Diabetic Nephropathy", "Myocardial Infarction", "Asthma",
	"Erosive Esophagitis", "Seizures", "Eye Diseases", "Anxiety Disorder",
	"Edema", "Thromboembolism", "Other Diseases",
}

// String returns the disease's display name.
func (d Disease) String() string {
	if d < 0 || d >= NumDiseases {
		return "Unknown"
	}
	return diseaseNames[d]
}

// Prevalence is the marginal probability that a cohort member suffers
// from each disease, shaped after Fig. 2 (hypertension dominates,
// followed by cardiovascular events and diabetes). Patients may carry
// several diseases, so the values need not sum to 1.
var Prevalence = map[Disease]float64{
	Hypertension:         0.49,
	CardiovascularEvents: 0.22,
	Type2Diabetes:        0.11,
	GastricUlcer:         0.06,
	Arthritis:            0.05,
	ProstaticHyperplasia: 0.04,
	DiabeticNephropathy:  0.03,
	MyocardialInfarction: 0.03,
	Asthma:               0.03,
	ErosiveEsophagitis:   0.03,
	Seizures:             0.02,
	EyeDiseases:          0.03,
	AnxietyDisorder:      0.03,
	Edema:                0.02,
	Thromboembolism:      0.02,
	OtherDiseases:        0.03,
}

// DrugClass groups drugs by pharmacological family; classes drive both
// the clinical-history features and the DDI generator.
type DrugClass int

// Pharmacological families used in the catalogue.
const (
	AlphaBlocker DrugClass = iota
	ACEInhibitor
	ARB
	BetaBlocker
	CalciumChannelBlocker
	Diuretic
	Statin
	Nitrate
	Antiplatelet
	Anticoagulant
	Biguanide
	Sulfonylurea
	DPP4Inhibitor
	Insulin
	PPI
	H2Blocker
	Antacid
	NSAID
	DMARD
	Corticosteroid
	Anticonvulsant
	Bronchodilator
	InhaledSteroid
	Benzodiazepine
	SSRI
	AlphaReductase
	Antimuscarinic
	EyeAgent
	Vasodilator
	Antiarrhythmic
	NumDrugClasses // sentinel
)

var drugClassNames = [NumDrugClasses]string{
	"alpha-blocker", "ACE inhibitor", "ARB", "beta-blocker",
	"calcium-channel blocker", "diuretic", "statin", "nitrate",
	"antiplatelet", "anticoagulant", "biguanide", "sulfonylurea",
	"DPP-4 inhibitor", "insulin", "PPI", "H2 blocker", "antacid",
	"NSAID", "DMARD", "corticosteroid", "anticonvulsant",
	"bronchodilator", "inhaled steroid", "benzodiazepine", "SSRI",
	"5-alpha-reductase inhibitor", "antimuscarinic", "eye agent",
	"vasodilator", "antiarrhythmic",
}

// String returns the class's display name.
func (c DrugClass) String() string {
	if c < 0 || c >= NumDrugClasses {
		return "unknown"
	}
	return drugClassNames[c]
}

// Drug describes one entry of the 86-drug catalogue.
type Drug struct {
	ID     int
	Name   string
	Class  DrugClass
	Treats []Disease
}

// Catalog returns the 86-drug catalogue. Drugs named in the paper's
// case studies keep their paper drug IDs (e.g. Doxazosin=1,
// Perindopril=5, Amlodipine=8, Indapamide=10, Felodipine=32,
// Simvastatin=46, Atorvastatin=47, Metformin=48, Isosorbide=58/59,
// Gabapentin=61, Theophylline=83).
func Catalog() []Drug {
	ds := []Drug{
		{0, "Prazosin", AlphaBlocker, []Disease{Hypertension, ProstaticHyperplasia}},
		{1, "Doxazosin", AlphaBlocker, []Disease{Hypertension, ProstaticHyperplasia}},
		{2, "Lisinopril", ACEInhibitor, []Disease{Hypertension, CardiovascularEvents}},
		{3, "Enalapril", ACEInhibitor, []Disease{Hypertension, CardiovascularEvents}},
		{4, "Ramipril", ACEInhibitor, []Disease{Hypertension, MyocardialInfarction}},
		{5, "Perindopril", ACEInhibitor, []Disease{Hypertension, CardiovascularEvents}},
		{6, "Losartan", ARB, []Disease{Hypertension, DiabeticNephropathy}},
		{7, "Valsartan", ARB, []Disease{Hypertension, CardiovascularEvents}},
		{8, "Amlodipine", CalciumChannelBlocker, []Disease{Hypertension, CardiovascularEvents}},
		{9, "Nifedipine", CalciumChannelBlocker, []Disease{Hypertension}},
		{10, "Indapamide", Diuretic, []Disease{Hypertension, Edema}},
		{11, "Hydrochlorothiazide", Diuretic, []Disease{Hypertension, Edema}},
		{12, "Furosemide", Diuretic, []Disease{Edema, CardiovascularEvents}},
		{13, "Spironolactone", Diuretic, []Disease{Hypertension, Edema}},
		{14, "Atenolol", BetaBlocker, []Disease{Hypertension, CardiovascularEvents}},
		{15, "Metoprolol", BetaBlocker, []Disease{Hypertension, MyocardialInfarction}},
		{16, "Propranolol", BetaBlocker, []Disease{Hypertension, AnxietyDisorder}},
		{17, "Bisoprolol", BetaBlocker, []Disease{CardiovascularEvents, Hypertension}},
		{18, "Carvedilol", BetaBlocker, []Disease{CardiovascularEvents, MyocardialInfarction}},
		{19, "Terazosin", AlphaBlocker, []Disease{Hypertension, ProstaticHyperplasia}},
		{20, "Diltiazem", CalciumChannelBlocker, []Disease{Hypertension, CardiovascularEvents}},
		{21, "Verapamil", CalciumChannelBlocker, []Disease{Hypertension, Antiarrhythmia}},
		{22, "Methyldopa", Vasodilator, []Disease{Hypertension}},
		{23, "Hydralazine", Vasodilator, []Disease{Hypertension, CardiovascularEvents}},
		{24, "Aspirin", Antiplatelet, []Disease{CardiovascularEvents, MyocardialInfarction, Thromboembolism}},
		{25, "Clopidogrel", Antiplatelet, []Disease{CardiovascularEvents, MyocardialInfarction}},
		{26, "Warfarin", Anticoagulant, []Disease{Thromboembolism, CardiovascularEvents}},
		{27, "Dipyridamole", Antiplatelet, []Disease{Thromboembolism, CardiovascularEvents}},
		{28, "Digoxin", Antiarrhythmic, []Disease{CardiovascularEvents}},
		{29, "Amiodarone", Antiarrhythmic, []Disease{CardiovascularEvents}},
		{30, "Ticlopidine", Antiplatelet, []Disease{Thromboembolism}},
		{31, "Nimodipine", CalciumChannelBlocker, []Disease{CardiovascularEvents}},
		{32, "Felodipine", CalciumChannelBlocker, []Disease{Hypertension}},
		{33, "Captopril", ACEInhibitor, []Disease{Hypertension, DiabeticNephropathy}},
		{34, "Irbesartan", ARB, []Disease{Hypertension, DiabeticNephropathy}},
		{35, "Telmisartan", ARB, []Disease{Hypertension}},
		{36, "Glibenclamide", Sulfonylurea, []Disease{Type2Diabetes}},
		{37, "Gliclazide", Sulfonylurea, []Disease{Type2Diabetes}},
		{38, "Glipizide", Sulfonylurea, []Disease{Type2Diabetes}},
		{39, "Tolbutamide", Sulfonylurea, []Disease{Type2Diabetes}},
		{40, "Sitagliptin", DPP4Inhibitor, []Disease{Type2Diabetes}},
		{41, "Insulin Glargine", Insulin, []Disease{Type2Diabetes, DiabeticNephropathy}},
		{42, "Insulin Aspart", Insulin, []Disease{Type2Diabetes}},
		{43, "Acarbose", Biguanide, []Disease{Type2Diabetes}},
		{44, "Pioglitazone", Biguanide, []Disease{Type2Diabetes}},
		{45, "Rosuvastatin", Statin, []Disease{CardiovascularEvents, MyocardialInfarction}},
		{46, "Simvastatin", Statin, []Disease{CardiovascularEvents, MyocardialInfarction}},
		{47, "Atorvastatin", Statin, []Disease{CardiovascularEvents, MyocardialInfarction}},
		{48, "Metformin", Biguanide, []Disease{Type2Diabetes, DiabeticNephropathy}},
		{49, "Omeprazole", PPI, []Disease{GastricUlcer, ErosiveEsophagitis}},
		{50, "Lansoprazole", PPI, []Disease{GastricUlcer, ErosiveEsophagitis}},
		{51, "Esomeprazole", PPI, []Disease{ErosiveEsophagitis, GastricUlcer}},
		{52, "Ranitidine", H2Blocker, []Disease{GastricUlcer, ErosiveEsophagitis}},
		{53, "Famotidine", H2Blocker, []Disease{GastricUlcer}},
		{54, "Cimetidine", H2Blocker, []Disease{GastricUlcer}},
		{55, "Sucralfate", Antacid, []Disease{GastricUlcer}},
		{56, "Misoprostol", Antacid, []Disease{GastricUlcer}},
		{57, "Aluminium Hydroxide", Antacid, []Disease{GastricUlcer, ErosiveEsophagitis}},
		{58, "Isosorbide Dinitrate", Nitrate, []Disease{CardiovascularEvents, MyocardialInfarction}},
		{59, "Isosorbide Mononitrate", Nitrate, []Disease{CardiovascularEvents, MyocardialInfarction}},
		{60, "Nitroglycerin", Nitrate, []Disease{MyocardialInfarction, CardiovascularEvents}},
		{61, "Gabapentin", Anticonvulsant, []Disease{Seizures, AnxietyDisorder}},
		{62, "Phenytoin", Anticonvulsant, []Disease{Seizures}},
		{63, "Carbamazepine", Anticonvulsant, []Disease{Seizures}},
		{64, "Valproate", Anticonvulsant, []Disease{Seizures}},
		{65, "Ibuprofen", NSAID, []Disease{Arthritis}},
		{66, "Naproxen", NSAID, []Disease{Arthritis}},
		{67, "Diclofenac", NSAID, []Disease{Arthritis}},
		{68, "Celecoxib", NSAID, []Disease{Arthritis}},
		{69, "Methotrexate", DMARD, []Disease{Arthritis}},
		{70, "Sulfasalazine", DMARD, []Disease{Arthritis}},
		{71, "Prednisolone", Corticosteroid, []Disease{Arthritis, Asthma}},
		{72, "Allopurinol", DMARD, []Disease{Arthritis}},
		{73, "Finasteride", AlphaReductase, []Disease{ProstaticHyperplasia}},
		{74, "Dutasteride", AlphaReductase, []Disease{ProstaticHyperplasia}},
		{75, "Tolterodine", Antimuscarinic, []Disease{ProstaticHyperplasia}},
		{76, "Oxybutynin", Antimuscarinic, []Disease{ProstaticHyperplasia}},
		{77, "Salbutamol", Bronchodilator, []Disease{Asthma}},
		{78, "Ipratropium", Bronchodilator, []Disease{Asthma}},
		{79, "Budesonide", InhaledSteroid, []Disease{Asthma}},
		{80, "Beclometasone", InhaledSteroid, []Disease{Asthma}},
		{81, "Diazepam", Benzodiazepine, []Disease{AnxietyDisorder, Seizures}},
		{82, "Lorazepam", Benzodiazepine, []Disease{AnxietyDisorder}},
		{83, "Theophylline", Bronchodilator, []Disease{Asthma}},
		{84, "Timolol Eye Drops", EyeAgent, []Disease{EyeDiseases}},
		{85, "Latanoprost", EyeAgent, []Disease{EyeDiseases}},
	}
	return ds
}

// Antiarrhythmia is an alias kept for catalogue readability; verapamil
// treats rate-control indications grouped under cardiovascular events.
const Antiarrhythmia = CardiovascularEvents

// NumDrugs is the size of the drug catalogue, matching the paper.
const NumDrugs = 86

// DrugsByDisease inverts the catalogue: for each disease the sorted
// list of drug IDs treating it.
func DrugsByDisease(catalog []Drug) map[Disease][]int {
	m := make(map[Disease][]int)
	for _, d := range catalog {
		for _, dis := range d.Treats {
			m[dis] = append(m[dis], d.ID)
		}
	}
	return m
}

// conflictingClasses lists pharmacological family pairs that tend to
// produce antagonistic interactions; the DDI generator draws
// antagonistic edges preferentially between them.
var conflictingClasses = [][2]DrugClass{
	{Anticonvulsant, Nitrate},               // e.g. gabapentin vs isosorbide (Fig. 8)
	{Anticonvulsant, AlphaBlocker},          // gabapentin vs doxazosin (Fig. 8e)
	{Anticonvulsant, CalciumChannelBlocker}, // phenytoin vs amlodipine/felodipine (Case 3)
	{Bronchodilator, ACEInhibitor},          // theophylline vs enalapril (Case 2)
	{Bronchodilator, BetaBlocker},           // beta agonists vs beta blockers
	{NSAID, ACEInhibitor},                   // blunts antihypertensive effect
	{NSAID, Diuretic},                       // nephrotoxic combination
	{NSAID, Anticoagulant},                  // bleeding risk
	{NSAID, Antiplatelet},                   // bleeding risk
	{Nitrate, Biguanide},                    // isosorbide vs metformin (Case 4)
	{Anticoagulant, Antiplatelet},           // bleeding risk
	{Benzodiazepine, Bronchodilator},        // respiratory depression vs stimulation
	{Sulfonylurea, BetaBlocker},             // masks hypoglycaemia
	{Corticosteroid, Biguanide},             // steroid-induced hyperglycaemia
	{Corticosteroid, Sulfonylurea},          // steroid-induced hyperglycaemia
	{H2Blocker, Anticonvulsant},             // cimetidine raises phenytoin levels
	{Antacid, Statin},                       // absorption interference
	{Antacid, EyeAgent},                     // absorption interference
	{Antimuscarinic, EyeAgent},              // raised intraocular pressure
	{Vasodilator, AlphaBlocker},             // additive hypotension
	{Antiarrhythmic, Statin},                // amiodarone raises statin levels
	{Antiarrhythmic, Anticoagulant},         // amiodarone potentiates warfarin
	{DPP4Inhibitor, ACEInhibitor},           // angioedema risk
	{PPI, Antiplatelet},                     // omeprazole blunts clopidogrel
}

// synergisticClasses lists family pairs whose members are commonly
// co-prescribed to complement each other; synergistic edges are drawn
// preferentially between them (and within same-indication statins, per
// Fig. 8a).
var synergisticClasses = [][2]DrugClass{
	{ACEInhibitor, Diuretic}, // perindopril + indapamide (Case 1)
	{ACEInhibitor, CalciumChannelBlocker},
	{Statin, Statin}, // simvastatin + atorvastatin (Fig. 8a)
	{Statin, Antiplatelet},
	{BetaBlocker, Diuretic},
	{ARB, Diuretic},
	{ARB, CalciumChannelBlocker},
	{Biguanide, Sulfonylurea},
	{Biguanide, DPP4Inhibitor},
	{Insulin, Biguanide},
	{AlphaBlocker, AlphaReductase},   // combination BPH therapy
	{Bronchodilator, InhaledSteroid}, // combination asthma therapy
	{PPI, Antacid},
	{DMARD, Corticosteroid},
	{Nitrate, BetaBlocker},
	{Nitrate, Statin},
	{Antiplatelet, Antiplatelet}, // dual antiplatelet therapy
}

package synth

import (
	"math"
	"math/rand"
	"sort"

	"dssddi/internal/graph"
	"dssddi/internal/mat"
)

// NumFeatures is the questionnaire feature dimension of the chronic
// cohort, matching the paper's 71 collected features.
const NumFeatures = 71

// Feature layout (documented for the feature-engineering code and the
// examples):
//
//	0      age (years)
//	1      gender (0 female, 1 male)
//	2      BMI
//	3..4   systolic / diastolic blood pressure
//	5      heart rate
//	6..7   fasting glucose / HbA1c
//	8..11  total cholesterol / LDL / HDL / triglycerides
//	12..13 creatinine / eGFR
//	14     uric acid
//	15     GDS depression score (0-15)
//	16..23 eight emotional questionnaire items (0/1)
//	24..39 sixteen disease-history flags (0/1, noisy)
//	40..59 twenty drug-family history flags (0/1, noisy)
//	60..70 physical performance & lifestyle (grip strength, walk speed,
//	       chair stands, smoking, drinking, exercise, education, ...)
const (
	featAge = iota
	featGender
	featBMI
	featSys
	featDia
	featHR
	featGlucose
	featHbA1c
	featChol
	featLDL
	featHDL
	featTG
	featCreatinine
	featEGFR
	featUricAcid
	featGDS
	featEmotion0     = 16
	featDiseaseHist0 = 24
	featDrugHist0    = 40
	featPhysical0    = 60
)

// Patient is one questionnaire interview record.
type Patient struct {
	ID       int
	Male     bool
	Age      float64
	Diseases []Disease
	// Features is the 71-dim questionnaire vector.
	Features []float64
	// Medications holds the drug IDs the patient takes (the label).
	Medications []int
}

// Cohort is the synthetic Hong Kong Chronic Disease Study data set.
type Cohort struct {
	Patients []Patient
	Catalog  []Drug
	DDI      *graph.Signed
	// ByDisease maps each disease to the drugs that treat it.
	ByDisease map[Disease][]int
}

// CohortOptions controls cohort generation; the defaults match the
// paper's cohort statistics (2254 male + 1903 female records).
type CohortOptions struct {
	Males   int
	Females int
	// AntagonismTolerance is the probability that a patient keeps a
	// drug despite an antagonistic interaction with one they already
	// take (Case 4 of the paper observes such patients exist).
	AntagonismTolerance float64
	DDI                 DDIOptions
}

// DefaultCohortOptions mirrors Section II of the paper.
func DefaultCohortOptions() CohortOptions {
	return CohortOptions{
		Males:               2254,
		Females:             1903,
		AntagonismTolerance: 0.08,
		DDI:                 DefaultDDIOptions(),
	}
}

// GenerateCohort builds the full synthetic chronic data set: DDI graph,
// patients with correlated features, and medication-use labels.
func GenerateCohort(rng *rand.Rand, opts CohortOptions) *Cohort {
	catalog := Catalog()
	ddi := GenerateDDI(rng, catalog, opts.DDI)
	byDisease := DrugsByDisease(catalog)

	c := &Cohort{Catalog: catalog, DDI: ddi, ByDisease: byDisease}
	total := opts.Males + opts.Females
	c.Patients = make([]Patient, 0, total)
	for i := 0; i < total; i++ {
		male := i < opts.Males
		p := generatePatient(rng, i, male, catalog, byDisease, ddi, opts.AntagonismTolerance)
		c.Patients = append(c.Patients, p)
	}
	// Shuffle so gender is not ordered by index.
	rng.Shuffle(len(c.Patients), func(i, j int) {
		c.Patients[i], c.Patients[j] = c.Patients[j], c.Patients[i]
		c.Patients[i].ID, c.Patients[j].ID = i, j
	})
	return c
}

// sampleDiseases draws a patient's disease set: every patient carries at
// least one chronic disease; comorbidities follow the marginal
// prevalences with a mild positive correlation between the
// cardio-metabolic conditions.
func sampleDiseases(rng *rand.Rand, male bool) []Disease {
	var ds []Disease
	has := make(map[Disease]bool)
	addIf := func(d Disease, p float64) {
		if !has[d] && rng.Float64() < p {
			has[d] = true
			ds = append(ds, d)
		}
	}
	for d := Disease(0); d < NumDiseases; d++ {
		p := Prevalence[d]
		if d == ProstaticHyperplasia && !male {
			continue
		}
		addIf(d, p)
	}
	// Comorbidity boosts: hypertension begets cardiovascular disease;
	// diabetes begets nephropathy.
	if has[Hypertension] {
		addIf(CardiovascularEvents, 0.18)
		addIf(Type2Diabetes, 0.10)
	}
	if has[Type2Diabetes] {
		addIf(DiabeticNephropathy, 0.22)
		addIf(EyeDiseases, 0.12)
	}
	if has[CardiovascularEvents] {
		addIf(MyocardialInfarction, 0.10)
		addIf(Thromboembolism, 0.08)
	}
	if len(ds) == 0 {
		// Guarantee at least one condition, biased to the common ones.
		r := rng.Float64()
		switch {
		case r < 0.55:
			ds = append(ds, Hypertension)
		case r < 0.80:
			ds = append(ds, CardiovascularEvents)
		default:
			ds = append(ds, Type2Diabetes)
		}
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds
}

func generatePatient(rng *rand.Rand, id int, male bool, catalog []Drug,
	byDisease map[Disease][]int, ddi *graph.Signed, tolerance float64) Patient {

	p := Patient{ID: id, Male: male}
	p.Age = 65 + rng.Float64()*30
	p.Diseases = sampleDiseases(rng, male)
	has := make(map[Disease]bool, len(p.Diseases))
	for _, d := range p.Diseases {
		has[d] = true
	}
	// Physiological features first: the prescribing model conditions
	// the within-class drug choice on them (doctors weigh age, renal
	// function, BMI, ... when picking a family member).
	p.Features = buildPhysiology(rng, &p, has)
	p.Medications = sampleMedications(rng, p.Features, p.Diseases, byDisease, ddi, tolerance)
	fillDrugHistory(rng, &p, catalog)
	return p
}

// drugPreference scores how well drug d suits a patient's physiology.
// Each drug carries a fixed pseudo-random preference vector over six
// physiological axes and their pairwise interactions (derived from the
// drug ID, not the cohort RNG, so the feature→drug mapping is stable).
// The interaction terms make the mapping deliberately non-linear:
// prescribing decisions like "this drug for the old AND renally
// impaired" cannot be captured by a linear model over the raw features,
// which is what separates the representation-learning methods from the
// linear baselines in the paper's Table I.
func drugPreference(d int, f []float64) float64 {
	axes := [6]float64{
		(f[featAge] - 80) / 10,
		(f[featBMI] - 23) / 3,
		(f[featSys] - 130) / 15,
		(f[featGlucose] - 6) / 2,
		(f[featCreatinine] - 90) / 30,
		(f[featGDS] - 3) / 3,
	}
	terms := [12]float64{
		axes[0], axes[1], axes[2], axes[3], axes[4], axes[5],
		axes[0] * axes[4], // age x renal function
		axes[1] * axes[3], // BMI x glucose
		axes[2] * axes[0], // blood pressure x age
		axes[3] * axes[4], // glucose x renal function
		axes[5] * axes[0], // mood x age
		axes[1] * axes[2], // BMI x blood pressure
	}
	var s float64
	seed := uint64(d)*0x9E3779B97F4A7C15 + 0x85EBCA6B
	for i, a := range terms {
		seed ^= seed >> 33
		seed *= 0xFF51AFD7ED558CCD
		// Map the hashed drug/term pair to a weight in [-1, 1);
		// interaction terms get 1.5x weight so the non-linear part of
		// the signal dominates the within-class choice.
		w := float64(int64(seed>>(8+i%32)))/float64(int64(1)<<55) - 1
		if i >= 6 {
			w *= 1.5
		}
		s += w * a
	}
	return s
}

// sampleMedications assigns drugs per disease from its repertoire:
// usually one, sometimes two. Within a repertoire the choice follows a
// softmax over the patient's physiological preference scores, so which
// family member a patient receives is learnable from their features.
// Synergistic partners are favoured; antagonistic additions are
// usually rejected.
func sampleMedications(rng *rand.Rand, feats []float64, diseases []Disease,
	byDisease map[Disease][]int, ddi *graph.Signed, tolerance float64) []int {

	chosen := make(map[int]bool)
	for _, dis := range diseases {
		repertoire := byDisease[dis]
		if len(repertoire) == 0 {
			continue
		}
		want := 1
		if len(repertoire) > 3 && rng.Float64() < 0.30 {
			want = 2
		}
		// Softmax weights over the repertoire (sharpness 2 keeps the
		// choice predictable but not deterministic).
		weights := make([]float64, len(repertoire))
		var wsum float64
		for i, d := range repertoire {
			weights[i] = math.Exp(2 * drugPreference(d, feats))
			wsum += weights[i]
		}
		for picks, attempts := 0, 0; picks < want && attempts < 25; attempts++ {
			cand := sampleWeighted(rng, repertoire, weights, wsum)
			if chosen[cand] {
				continue
			}
			boost := 1.0
			conflict := false
			for d := range chosen {
				if s, ok := ddi.Edge(cand, d); ok {
					switch s {
					case graph.Synergy:
						boost += 2.0
					case graph.Antagonism:
						conflict = true
					}
				}
			}
			if conflict && rng.Float64() > tolerance {
				continue
			}
			if rng.Float64() < boost/(boost+0.3) {
				chosen[cand] = true
				picks++
			}
		}
	}
	out := make([]int, 0, len(chosen))
	for d := range chosen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

func sampleWeighted(rng *rand.Rand, items []int, weights []float64, wsum float64) int {
	r := rng.Float64() * wsum
	for i, w := range weights {
		r -= w
		if r <= 0 {
			return items[i]
		}
	}
	return items[len(items)-1]
}

// buildPhysiology produces the 71-dim questionnaire vector except the
// drug-family history flags (filled after medication sampling),
// conditioned on the patient's diseases so the features carry
// predictive signal.
func buildPhysiology(rng *rand.Rand, p *Patient, has map[Disease]bool) []float64 {
	f := make([]float64, NumFeatures)
	noise := func(s float64) float64 { return rng.NormFloat64() * s }

	f[featAge] = p.Age
	if p.Male {
		f[featGender] = 1
	}
	f[featBMI] = 23 + noise(3)
	if has[Type2Diabetes] {
		f[featBMI] += 2.5
	}
	f[featSys], f[featDia] = 125+noise(10), 75+noise(7)
	if has[Hypertension] {
		f[featSys] += 25 + noise(8)
		f[featDia] += 12 + noise(5)
	}
	f[featHR] = 72 + noise(8)
	f[featGlucose], f[featHbA1c] = 5.2+noise(0.5), 5.5+noise(0.3)
	if has[Type2Diabetes] {
		f[featGlucose] += 3.0 + noise(1.0)
		f[featHbA1c] += 2.0 + noise(0.6)
	}
	f[featChol], f[featLDL] = 5.0+noise(0.8), 3.0+noise(0.6)
	f[featHDL], f[featTG] = 1.3+noise(0.3), 1.5+noise(0.5)
	if has[CardiovascularEvents] || has[MyocardialInfarction] {
		f[featChol] += 1.2
		f[featLDL] += 1.0
		f[featHDL] -= 0.2
	}
	f[featCreatinine], f[featEGFR] = 80+noise(12), 80+noise(12)
	if has[DiabeticNephropathy] {
		f[featCreatinine] += 60 + noise(20)
		f[featEGFR] -= 35 + noise(10)
	}
	f[featUricAcid] = 0.32 + noise(0.06)
	gds := 2 + noise(1.5)
	if has[AnxietyDisorder] {
		gds += 5 + noise(2)
	}
	if gds < 0 {
		gds = 0
	}
	if gds > 15 {
		gds = 15
	}
	f[featGDS] = gds
	// Emotional items correlate with the GDS score.
	for i := 0; i < 8; i++ {
		pYes := 0.1 + 0.05*gds
		if pYes > 0.95 {
			pYes = 0.95
		}
		if rng.Float64() < pYes {
			f[featEmotion0+i] = 1
		}
	}
	// Disease-history flags: the questionnaire is noisy — 75% recall,
	// 5% false positives.
	for d := Disease(0); d < NumDiseases; d++ {
		idx := featDiseaseHist0 + int(d)
		if idx >= featDrugHist0 {
			break
		}
		if has[d] {
			if rng.Float64() < 0.75 {
				f[idx] = 1
			}
		} else if rng.Float64() < 0.05 {
			f[idx] = 1
		}
	}
	// Physical performance & lifestyle: grip strength, walk speed,
	// chair-stand time decline with age; smoking/drinking/exercise and
	// education are categorical-ish.
	ageFactor := (p.Age - 65) / 30
	f[featPhysical0+0] = 30 - 12*ageFactor + noise(4) // grip strength (kg)
	f[featPhysical0+1] = 1.2 - 0.5*ageFactor + noise(0.15)
	f[featPhysical0+2] = 12 + 8*ageFactor + noise(2)
	f[featPhysical0+3] = boolTo(rng.Float64() < 0.18) // smoker
	f[featPhysical0+4] = boolTo(rng.Float64() < 0.25) // drinks
	f[featPhysical0+5] = boolTo(rng.Float64() < 0.5)  // exercises
	f[featPhysical0+6] = float64(rng.Intn(4))         // education level
	f[featPhysical0+7] = boolTo(rng.Float64() < 0.35) // lives alone
	f[featPhysical0+8] = float64(rng.Intn(5))         // # hospitalisations
	f[featPhysical0+9] = 7 + noise(1.2)               // sleep hours
	f[featPhysical0+10] = boolTo(rng.Float64() < 0.6) // has caregiver
	return f
}

// fillDrugHistory sets the drug-family history flags: whether the
// patient reports having taken a drug of each family (first 20
// classes), derived from current medications. Elderly questionnaire
// recall of drug families is poor, so the flags are heavily noised
// (45% recall, 8% false positives) — they hint at the drug family
// without determining it.
func fillDrugHistory(rng *rand.Rand, p *Patient, catalog []Drug) {
	classTaken := make(map[DrugClass]bool)
	for _, med := range p.Medications {
		classTaken[catalog[med].Class] = true
	}
	for cls := DrugClass(0); cls < 20; cls++ {
		idx := featDrugHist0 + int(cls)
		if classTaken[cls] {
			if rng.Float64() < 0.45 {
				p.Features[idx] = 1
			}
		} else if rng.Float64() < 0.08 {
			p.Features[idx] = 1
		}
	}
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// FeatureMatrix stacks all patient feature vectors into an n x 71
// matrix.
func (c *Cohort) FeatureMatrix() *mat.Dense {
	x := mat.New(len(c.Patients), NumFeatures)
	for i, p := range c.Patients {
		copy(x.Row(i), p.Features)
	}
	return x
}

// LabelMatrix builds the n x 86 binary medication-use matrix Y.
func (c *Cohort) LabelMatrix() *mat.Dense {
	y := mat.New(len(c.Patients), NumDrugs)
	for i, p := range c.Patients {
		for _, d := range p.Medications {
			y.Set(i, d, 1)
		}
	}
	return y
}

// DiseaseCount returns the number of distinct diseases present in the
// cohort (the paper sets the k of K-means to this).
func (c *Cohort) DiseaseCount() int {
	seen := make(map[Disease]bool)
	for _, p := range c.Patients {
		for _, d := range p.Diseases {
			seen[d] = true
		}
	}
	return len(seen)
}

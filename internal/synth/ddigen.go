package synth

import (
	"math/rand"
	"sort"

	"dssddi/internal/graph"
)

// DDIOptions controls DDI graph generation. The defaults reproduce the
// paper's DrugCombDB extraction: 97 synergistic and 243 antagonistic
// pairs among the 86 catalogue drugs.
type DDIOptions struct {
	Synergistic  int
	Antagonistic int
}

// DefaultDDIOptions mirrors Section II-C of the paper.
func DefaultDDIOptions() DDIOptions {
	return DDIOptions{Synergistic: 97, Antagonistic: 243}
}

// pairKey normalises an unordered drug pair.
func pairKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// mandatorySynergy are interactions named in the paper's case studies.
var mandatorySynergy = [][2]int{
	{46, 47}, // Simvastatin + Atorvastatin (Fig. 8a)
	{5, 10},  // Perindopril + Indapamide (Case 1)
}

// mandatoryAntagonism are interactions named in the paper's case
// studies.
var mandatoryAntagonism = [][2]int{
	{59, 61}, // Isosorbide Mononitrate vs Gabapentin (Fig. 8a)
	{1, 61},  // Doxazosin vs Gabapentin (Fig. 8e)
	{3, 83},  // Enalapril vs Theophylline (Case 2)
	{8, 62},  // Amlodipine vs Phenytoin (Case 3)
	{1, 8},   // Amlodipine vs Doxazosin (Case 3)
	{8, 19},  // Amlodipine vs Terazosin (Case 3)
	{0, 8},   // Amlodipine vs Prazosin (Case 3)
	{32, 62}, // Felodipine vs Phenytoin (Case 3)
	{1, 32},  // Felodipine vs Doxazosin (Case 3)
	{19, 32}, // Felodipine vs Terazosin (Case 3)
	{0, 32},  // Felodipine vs Prazosin (Case 3)
	{48, 58}, // Metformin vs Isosorbide Dinitrate (Case 4)
}

// GenerateDDI builds the signed drug-drug interaction graph. Synergy
// edges are drawn preferentially between complementary drug classes
// that share an indication; antagonistic edges between
// pharmacologically conflicting classes. The paper's case-study pairs
// are always present.
func GenerateDDI(rng *rand.Rand, catalog []Drug, opts DDIOptions) *graph.Signed {
	n := len(catalog)
	g := graph.NewSigned(n)
	used := make(map[[2]int]bool)

	place := func(u, v int, s graph.Sign) bool {
		k := pairKey(u, v)
		if u == v || used[k] {
			return false
		}
		used[k] = true
		g.SetEdge(u, v, s)
		return true
	}

	nSyn, nAnt := 0, 0
	for _, p := range mandatorySynergy {
		if place(p[0], p[1], graph.Synergy) {
			nSyn++
		}
	}
	for _, p := range mandatoryAntagonism {
		if place(p[0], p[1], graph.Antagonism) {
			nAnt++
		}
	}

	synCand := candidatePairs(catalog, synergisticClasses, true)
	antCand := candidatePairs(catalog, conflictingClasses, false)
	shuffle(rng, synCand)
	shuffle(rng, antCand)

	for _, p := range synCand {
		if nSyn >= opts.Synergistic {
			break
		}
		if place(p[0], p[1], graph.Synergy) {
			nSyn++
		}
	}
	for _, p := range antCand {
		if nAnt >= opts.Antagonistic {
			break
		}
		if place(p[0], p[1], graph.Antagonism) {
			nAnt++
		}
	}

	// Top up with cross-class random pairs if the rule pools ran dry.
	for nSyn < opts.Synergistic || nAnt < opts.Antagonistic {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || used[pairKey(u, v)] {
			continue
		}
		if nAnt < opts.Antagonistic && catalog[u].Class != catalog[v].Class {
			if place(u, v, graph.Antagonism) {
				nAnt++
			}
			continue
		}
		if nSyn < opts.Synergistic && shareDisease(catalog[u], catalog[v]) {
			if place(u, v, graph.Synergy) {
				nSyn++
			}
		}
	}
	return g
}

// candidatePairs enumerates drug pairs whose classes match one of the
// given class pairs. For synergy candidates the drugs must also share a
// treated disease unless the rule is a same-class pair.
func candidatePairs(catalog []Drug, rules [][2]DrugClass, requireShared bool) [][2]int {
	ruleSet := make(map[[2]DrugClass]bool)
	for _, r := range rules {
		a, b := r[0], r[1]
		if a > b {
			a, b = b, a
		}
		ruleSet[[2]DrugClass{a, b}] = true
	}
	var out [][2]int
	for i := 0; i < len(catalog); i++ {
		for j := i + 1; j < len(catalog); j++ {
			a, b := catalog[i].Class, catalog[j].Class
			if a > b {
				a, b = b, a
			}
			if !ruleSet[[2]DrugClass{a, b}] {
				continue
			}
			if requireShared && a != b && !shareDisease(catalog[i], catalog[j]) {
				continue
			}
			out = append(out, [2]int{catalog[i].ID, catalog[j].ID})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func shareDisease(a, b Drug) bool {
	for _, x := range a.Treats {
		for _, y := range b.Treats {
			if x == y {
				return true
			}
		}
	}
	return false
}

func shuffle(rng *rand.Rand, pairs [][2]int) {
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
}

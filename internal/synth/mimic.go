package synth

import (
	"math/rand"
	"sort"

	"dssddi/internal/graph"
	"dssddi/internal/mat"
)

// MIMICOptions controls the synthetic critical-care data set standing
// in for MIMIC-III (Section V-E of the paper). The defaults mirror the
// paper's extraction: 6350 patients, each with at least two visits,
// and an unsigned (antagonism-only) DDI graph over anonymous drugs.
type MIMICOptions struct {
	Patients   int
	Conditions int // latent ICU condition codes
	Diagnoses  int // diagnosis code vocabulary
	Procedures int // procedure code vocabulary
	Medicines  int // anonymous medicine vocabulary
	MaxVisits  int
	// AntagonisticEdges is the number of (anonymous) antagonistic DDI
	// pairs; the MIMIC extract used by the paper has no synergy labels.
	AntagonisticEdges int
}

// DefaultMIMICOptions mirrors the paper's MIMIC-III extraction.
func DefaultMIMICOptions() MIMICOptions {
	return MIMICOptions{
		Patients:          6350,
		Conditions:        24,
		Diagnoses:         96,
		Procedures:        64,
		Medicines:         112,
		MaxVisits:         4,
		AntagonisticEdges: 280,
	}
}

// Visit is one hospital admission.
type Visit struct {
	Diagnoses  []int
	Procedures []int
	Medicines  []int
}

// MIMICPatient is one de-identified patient with >= 2 visits.
type MIMICPatient struct {
	ID     int
	Visits []Visit
}

// MIMIC is the synthetic critical-care data set. Per the paper's
// protocol, the medicines of the LAST visit are the prediction label
// and the diagnosis/procedure codes of all PREVIOUS visits are the
// patient features.
type MIMIC struct {
	Patients []MIMICPatient
	Opts     MIMICOptions
	DDI      *graph.Signed
	// condDiag / condProc / condMed are the latent condition ->
	// code emission tables used by the generator (exported for tests).
	condDiag, condProc, condMed [][]int
}

// GenerateMIMIC builds the synthetic visit data set.
func GenerateMIMIC(rng *rand.Rand, opts MIMICOptions) *MIMIC {
	m := &MIMIC{Opts: opts}
	// Each latent condition emits a handful of diagnosis, procedure and
	// medicine codes.
	emit := func(vocab, per int) [][]int {
		tables := make([][]int, opts.Conditions)
		for c := range tables {
			seen := map[int]bool{}
			for len(tables[c]) < per {
				code := rng.Intn(vocab)
				if !seen[code] {
					seen[code] = true
					tables[c] = append(tables[c], code)
				}
			}
			sort.Ints(tables[c])
		}
		return tables
	}
	m.condDiag = emit(opts.Diagnoses, 5)
	m.condProc = emit(opts.Procedures, 3)
	m.condMed = emit(opts.Medicines, 4)

	m.DDI = generateUnsignedDDI(rng, opts.Medicines, opts.AntagonisticEdges)

	m.Patients = make([]MIMICPatient, opts.Patients)
	for i := range m.Patients {
		m.Patients[i] = m.generatePatient(rng, i)
	}
	return m
}

func (m *MIMIC) generatePatient(rng *rand.Rand, id int) MIMICPatient {
	p := MIMICPatient{ID: id}
	// 1-3 persistent latent conditions.
	nCond := 1 + rng.Intn(3)
	conds := rng.Perm(m.Opts.Conditions)[:nCond]
	nVisits := 2 + rng.Intn(m.Opts.MaxVisits-1)
	for v := 0; v < nVisits; v++ {
		p.Visits = append(p.Visits, m.generateVisit(rng, conds))
	}
	return p
}

func (m *MIMIC) generateVisit(rng *rand.Rand, conds []int) Visit {
	var vis Visit
	diag := map[int]bool{}
	proc := map[int]bool{}
	med := map[int]bool{}
	for _, c := range conds {
		for _, code := range m.condDiag[c] {
			if rng.Float64() < 0.7 {
				diag[code] = true
			}
		}
		for _, code := range m.condProc[c] {
			if rng.Float64() < 0.5 {
				proc[code] = true
			}
		}
		for _, code := range m.condMed[c] {
			if rng.Float64() < 0.75 {
				med[code] = true
			}
		}
	}
	// Noise codes.
	if rng.Float64() < 0.3 {
		diag[rng.Intn(m.Opts.Diagnoses)] = true
	}
	if rng.Float64() < 0.2 {
		med[rng.Intn(m.Opts.Medicines)] = true
	}
	vis.Diagnoses = sortedKeys(diag)
	vis.Procedures = sortedKeys(proc)
	vis.Medicines = sortedKeys(med)
	if len(vis.Medicines) == 0 {
		vis.Medicines = []int{rng.Intn(m.Opts.Medicines)}
	}
	return vis
}

// generateUnsignedDDI draws antagonism-only edges between anonymous
// medicines (the paper notes the public extract has no synergy labels,
// which is why only the GIN backbone applies on MIMIC).
func generateUnsignedDDI(rng *rand.Rand, n, edges int) *graph.Signed {
	g := graph.NewSigned(n)
	placed := 0
	for placed < edges {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if _, ok := g.Edge(u, v); ok {
			continue
		}
		g.SetEdge(u, v, graph.Antagonism)
		placed++
	}
	return g
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// FeatureMatrix builds the patient feature matrix: multi-hot diagnosis
// and procedure codes over all visits EXCEPT the last (the label
// visit), per the paper's protocol.
func (m *MIMIC) FeatureMatrix() *mat.Dense {
	d := m.Opts.Diagnoses + m.Opts.Procedures
	x := mat.New(len(m.Patients), d)
	for i, p := range m.Patients {
		row := x.Row(i)
		for _, v := range p.Visits[:len(p.Visits)-1] {
			for _, c := range v.Diagnoses {
				row[c] = 1
			}
			for _, c := range v.Procedures {
				row[m.Opts.Diagnoses+c] = 1
			}
		}
	}
	return x
}

// LabelMatrix builds the n x medicines binary matrix of last-visit
// medicine use.
func (m *MIMIC) LabelMatrix() *mat.Dense {
	y := mat.New(len(m.Patients), m.Opts.Medicines)
	for i, p := range m.Patients {
		last := p.Visits[len(p.Visits)-1]
		for _, med := range last.Medicines {
			y.Set(i, med, 1)
		}
	}
	return y
}

// VisitMedicineHistory returns, per patient, the medicine multi-hot of
// each non-label visit (used by the sequence baselines SafeDrug and
// CauseRec).
func (m *MIMIC) VisitMedicineHistory() [][][]int {
	out := make([][][]int, len(m.Patients))
	for i, p := range m.Patients {
		for _, v := range p.Visits[:len(p.Visits)-1] {
			out[i] = append(out[i], v.Medicines)
		}
	}
	return out
}

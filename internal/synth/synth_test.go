package synth

import (
	"math/rand"
	"testing"

	"dssddi/internal/graph"
)

func TestCatalogSize(t *testing.T) {
	c := Catalog()
	if len(c) != NumDrugs {
		t.Fatalf("catalogue has %d drugs, want %d", len(c), NumDrugs)
	}
	for i, d := range c {
		if d.ID != i {
			t.Fatalf("drug %d has ID %d; IDs must be dense", i, d.ID)
		}
		if d.Name == "" || len(d.Treats) == 0 {
			t.Fatalf("drug %d incomplete: %+v", i, d)
		}
	}
}

func TestCatalogPaperDrugIDs(t *testing.T) {
	c := Catalog()
	want := map[int]string{
		1:  "Doxazosin",
		3:  "Enalapril",
		5:  "Perindopril",
		8:  "Amlodipine",
		10: "Indapamide",
		32: "Felodipine",
		46: "Simvastatin",
		47: "Atorvastatin",
		48: "Metformin",
		61: "Gabapentin",
		62: "Phenytoin",
		83: "Theophylline",
	}
	for id, name := range want {
		if c[id].Name != name {
			t.Errorf("DID %d = %q, want %q (paper case-study ID)", id, c[id].Name, name)
		}
	}
}

func TestDrugsByDisease(t *testing.T) {
	m := DrugsByDisease(Catalog())
	if len(m[Hypertension]) < 10 {
		t.Fatalf("hypertension should have many drugs, got %d", len(m[Hypertension]))
	}
	for dis, drugs := range m {
		for _, d := range drugs {
			if d < 0 || d >= NumDrugs {
				t.Fatalf("disease %v has out-of-range drug %d", dis, d)
			}
		}
	}
}

func TestGenerateDDICounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GenerateDDI(rng, Catalog(), DefaultDDIOptions())
	syn, ant, zero := g.CountBySign()
	if syn != 97 {
		t.Fatalf("synergy edges %d, want 97", syn)
	}
	if ant != 243 {
		t.Fatalf("antagonism edges %d, want 243", ant)
	}
	if zero != 0 {
		t.Fatalf("generator should not emit zero edges, got %d", zero)
	}
}

func TestGenerateDDIMandatoryPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := GenerateDDI(rng, Catalog(), DefaultDDIOptions())
	if s, ok := g.Edge(46, 47); !ok || s != graph.Synergy {
		t.Error("Simvastatin-Atorvastatin must be synergistic (Fig. 8a)")
	}
	if s, ok := g.Edge(5, 10); !ok || s != graph.Synergy {
		t.Error("Perindopril-Indapamide must be synergistic (Case 1)")
	}
	if s, ok := g.Edge(59, 61); !ok || s != graph.Antagonism {
		t.Error("Isosorbide-Gabapentin must be antagonistic (Fig. 8a)")
	}
	if s, ok := g.Edge(3, 83); !ok || s != graph.Antagonism {
		t.Error("Enalapril-Theophylline must be antagonistic (Case 2)")
	}
	if s, ok := g.Edge(48, 58); !ok || s != graph.Antagonism {
		t.Error("Metformin-Isosorbide must be antagonistic (Case 4)")
	}
	for _, ccb := range []int{8, 32} {
		for _, other := range []int{0, 1, 19, 62} {
			if s, ok := g.Edge(ccb, other); !ok || s != graph.Antagonism {
				t.Errorf("drug %d vs %d must be antagonistic (Case 3)", ccb, other)
			}
		}
	}
}

func TestGenerateDDIDeterministic(t *testing.T) {
	a := GenerateDDI(rand.New(rand.NewSource(7)), Catalog(), DefaultDDIOptions())
	b := GenerateDDI(rand.New(rand.NewSource(7)), Catalog(), DefaultDDIOptions())
	ea, eb := a.Edges(), b.Edges()
	if len(ea.U) != len(eb.U) {
		t.Fatal("edge counts differ for same seed")
	}
	for i := range ea.U {
		if ea.U[i] != eb.U[i] || ea.V[i] != eb.V[i] || ea.S[i] != eb.S[i] {
			t.Fatal("edge lists differ for same seed")
		}
	}
}

func smallCohort(seed int64) *Cohort {
	opts := DefaultCohortOptions()
	opts.Males, opts.Females = 120, 100
	return GenerateCohort(rand.New(rand.NewSource(seed)), opts)
}

func TestCohortShape(t *testing.T) {
	c := smallCohort(1)
	if len(c.Patients) != 220 {
		t.Fatalf("patients %d, want 220", len(c.Patients))
	}
	males := 0
	for _, p := range c.Patients {
		if p.Male {
			males++
		}
		if len(p.Features) != NumFeatures {
			t.Fatalf("patient %d has %d features", p.ID, len(p.Features))
		}
		if len(p.Diseases) == 0 {
			t.Fatalf("patient %d has no diseases", p.ID)
		}
		if p.Age < 65 || p.Age > 95 {
			t.Fatalf("age %v outside cohort range", p.Age)
		}
	}
	if males != 120 {
		t.Fatalf("males %d, want 120", males)
	}
}

func TestCohortIDsMatchIndex(t *testing.T) {
	c := smallCohort(2)
	for i, p := range c.Patients {
		if p.ID != i {
			t.Fatalf("patient at index %d has ID %d", i, p.ID)
		}
	}
}

func TestCohortMedicationsTreatDiseases(t *testing.T) {
	c := smallCohort(3)
	byDisease := c.ByDisease
	for _, p := range c.Patients {
		treatable := map[int]bool{}
		for _, d := range p.Diseases {
			for _, drug := range byDisease[d] {
				treatable[drug] = true
			}
		}
		for _, m := range p.Medications {
			if !treatable[m] {
				t.Fatalf("patient %d takes drug %d (%s) treating none of their diseases %v",
					p.ID, m, c.Catalog[m].Name, p.Diseases)
			}
		}
	}
}

func TestCohortMostlyAvoidsAntagonism(t *testing.T) {
	c := smallCohort(4)
	pairs, conflicts := 0, 0
	for _, p := range c.Patients {
		for i := 0; i < len(p.Medications); i++ {
			for j := i + 1; j < len(p.Medications); j++ {
				pairs++
				if s, ok := c.DDI.Edge(p.Medications[i], p.Medications[j]); ok && s == graph.Antagonism {
					conflicts++
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no medication pairs at all")
	}
	rate := float64(conflicts) / float64(pairs)
	if rate > 0.10 {
		t.Fatalf("antagonistic co-prescription rate %.3f too high", rate)
	}
}

func TestCohortProstateDrugsOnlyForMales(t *testing.T) {
	c := smallCohort(5)
	for _, p := range c.Patients {
		if p.Male {
			continue
		}
		for _, d := range p.Diseases {
			if d == ProstaticHyperplasia {
				t.Fatalf("female patient %d has prostatic hyperplasia", p.ID)
			}
		}
	}
}

func TestFeatureSignal(t *testing.T) {
	// Feature conditioning: hypertensive patients should have higher
	// systolic BP on average, diabetics higher glucose.
	c := smallCohort(6)
	var bpH, bpN, nH, nN float64
	var glD, glN, nD, nND float64
	for _, p := range c.Patients {
		has := map[Disease]bool{}
		for _, d := range p.Diseases {
			has[d] = true
		}
		if has[Hypertension] {
			bpH += p.Features[featSys]
			nH++
		} else {
			bpN += p.Features[featSys]
			nN++
		}
		if has[Type2Diabetes] {
			glD += p.Features[featGlucose]
			nD++
		} else {
			glN += p.Features[featGlucose]
			nND++
		}
	}
	if nH == 0 || nN == 0 || nD == 0 || nND == 0 {
		t.Skip("cohort too small for both groups")
	}
	if bpH/nH <= bpN/nN+10 {
		t.Fatalf("hypertensive BP %.1f not clearly above normal %.1f", bpH/nH, bpN/nN)
	}
	if glD/nD <= glN/nND+1 {
		t.Fatalf("diabetic glucose %.1f not clearly above normal %.1f", glD/nD, glN/nND)
	}
}

func TestFeatureLabelMatrices(t *testing.T) {
	c := smallCohort(7)
	x := c.FeatureMatrix()
	y := c.LabelMatrix()
	if x.Rows() != 220 || x.Cols() != NumFeatures {
		t.Fatalf("X shape %dx%d", x.Rows(), x.Cols())
	}
	if y.Rows() != 220 || y.Cols() != NumDrugs {
		t.Fatalf("Y shape %dx%d", y.Rows(), y.Cols())
	}
	for i, p := range c.Patients {
		var count float64
		for _, v := range y.Row(i) {
			count += v
		}
		if int(count) != len(p.Medications) {
			t.Fatalf("patient %d label row sums to %v, want %d", i, count, len(p.Medications))
		}
	}
}

func TestDiseaseCount(t *testing.T) {
	c := smallCohort(8)
	k := c.DiseaseCount()
	if k < 5 || k > int(NumDiseases) {
		t.Fatalf("disease count %d implausible", k)
	}
}

func TestMIMICShape(t *testing.T) {
	opts := DefaultMIMICOptions()
	opts.Patients = 150
	m := GenerateMIMIC(rand.New(rand.NewSource(1)), opts)
	if len(m.Patients) != 150 {
		t.Fatalf("patients %d", len(m.Patients))
	}
	for _, p := range m.Patients {
		if len(p.Visits) < 2 {
			t.Fatalf("patient %d has %d visits, want >= 2", p.ID, len(p.Visits))
		}
		for _, v := range p.Visits {
			if len(v.Medicines) == 0 {
				t.Fatalf("patient %d has a visit with no medicines", p.ID)
			}
		}
	}
}

func TestMIMICDDIUnsignedOnly(t *testing.T) {
	opts := DefaultMIMICOptions()
	opts.Patients = 50
	m := GenerateMIMIC(rand.New(rand.NewSource(2)), opts)
	syn, ant, zero := m.DDI.CountBySign()
	if syn != 0 || zero != 0 {
		t.Fatalf("MIMIC DDI must be antagonism-only, got syn=%d zero=%d", syn, zero)
	}
	if ant != opts.AntagonisticEdges {
		t.Fatalf("antagonistic edges %d, want %d", ant, opts.AntagonisticEdges)
	}
}

func TestMIMICFeatureLabelSplit(t *testing.T) {
	opts := DefaultMIMICOptions()
	opts.Patients = 80
	m := GenerateMIMIC(rand.New(rand.NewSource(3)), opts)
	x := m.FeatureMatrix()
	y := m.LabelMatrix()
	if x.Rows() != 80 || x.Cols() != opts.Diagnoses+opts.Procedures {
		t.Fatalf("X shape %dx%d", x.Rows(), x.Cols())
	}
	if y.Rows() != 80 || y.Cols() != opts.Medicines {
		t.Fatalf("Y shape %dx%d", y.Rows(), y.Cols())
	}
	// Label must reflect ONLY the last visit.
	for i, p := range m.Patients {
		last := p.Visits[len(p.Visits)-1]
		want := map[int]bool{}
		for _, med := range last.Medicines {
			want[med] = true
		}
		for j := 0; j < y.Cols(); j++ {
			if (y.At(i, j) == 1) != want[j] {
				t.Fatalf("patient %d label mismatch at med %d", i, j)
			}
		}
	}
}

func TestMIMICHistoryExcludesLabelVisit(t *testing.T) {
	opts := DefaultMIMICOptions()
	opts.Patients = 40
	m := GenerateMIMIC(rand.New(rand.NewSource(4)), opts)
	hist := m.VisitMedicineHistory()
	for i, p := range m.Patients {
		if len(hist[i]) != len(p.Visits)-1 {
			t.Fatalf("patient %d history has %d visits, want %d", i, len(hist[i]), len(p.Visits)-1)
		}
	}
}

func TestMIMICLabelPredictableFromHistory(t *testing.T) {
	// Because conditions persist across visits, earlier-visit medicines
	// should overlap heavily with the label medicines.
	opts := DefaultMIMICOptions()
	opts.Patients = 100
	m := GenerateMIMIC(rand.New(rand.NewSource(5)), opts)
	var overlap, total float64
	for _, p := range m.Patients {
		prior := map[int]bool{}
		for _, v := range p.Visits[:len(p.Visits)-1] {
			for _, med := range v.Medicines {
				prior[med] = true
			}
		}
		for _, med := range p.Visits[len(p.Visits)-1].Medicines {
			total++
			if prior[med] {
				overlap++
			}
		}
	}
	if overlap/total < 0.5 {
		t.Fatalf("label medicines share only %.2f with history; generator lost signal", overlap/total)
	}
}

// Package truss implements triangle-support counting and k-truss
// decomposition (Wang & Cheng, PVLDB 2012), the structural primitive of
// the paper's Medical Support module: an edge's truss number is the
// largest k such that the edge survives in the k-truss, where a k-truss
// is a subgraph in which every edge is contained in at least k-2
// triangles.
package truss

import (
	"dssddi/internal/graph"
)

// Edge identifies an undirected edge with U < V.
type Edge struct{ U, V int }

// MakeEdge normalises an edge so U < V.
func MakeEdge(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{u, v}
}

// Support returns the number of triangles containing each edge of g.
func Support(g *graph.Undirected) map[Edge]int {
	sup := make(map[Edge]int)
	for _, e := range g.Edges() {
		u, v := e[0], e[1]
		count := 0
		// Iterate over the smaller adjacency for efficiency.
		a, b := u, v
		if g.Degree(a) > g.Degree(b) {
			a, b = b, a
		}
		for _, w := range g.Neighbors(a) {
			if w != b && g.HasEdge(w, b) {
				count++
			}
		}
		sup[Edge{u, v}] = count
	}
	return sup
}

// Decompose computes the truss number of every edge of g via the
// peeling algorithm: repeatedly delete the edge with the smallest
// support; its truss number is support+2 at deletion time (clamped to
// be non-decreasing over the peel).
func Decompose(g *graph.Undirected) map[Edge]int {
	work := g.Clone()
	sup := Support(work)
	trussNum := make(map[Edge]int, len(sup))

	k := 2
	for len(sup) > 0 {
		// Find the minimum-support edge.
		var minE Edge
		minS := -1
		for e, s := range sup {
			if minS < 0 || s < minS || (s == minS && less(e, minE)) {
				minE, minS = e, s
			}
		}
		if minS+2 > k {
			k = minS + 2
		}
		trussNum[minE] = k
		// Remove the edge and decrement support of edges in shared
		// triangles.
		u, v := minE.U, minE.V
		for _, w := range work.Neighbors(u) {
			if w != v && work.HasEdge(w, v) {
				dec(sup, MakeEdge(u, w))
				dec(sup, MakeEdge(v, w))
			}
		}
		work.RemoveEdge(u, v)
		delete(sup, minE)
	}
	return trussNum
}

func less(a, b Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

func dec(sup map[Edge]int, e Edge) {
	if s, ok := sup[e]; ok && s > 0 {
		sup[e] = s - 1
	}
}

// MaxTruss returns the subgraph of g formed by edges with truss number
// >= k, as a new graph on the same node IDs.
func MaxTruss(g *graph.Undirected, trussNum map[Edge]int, k int) *graph.Undirected {
	out := graph.NewUndirected(g.N())
	for e, t := range trussNum {
		if t >= k {
			out.AddEdge(e.U, e.V)
		}
	}
	return out
}

// MinTrussOn returns the smallest truss number among the given edges
// (0 when the list is empty or an edge is unknown).
func MinTrussOn(trussNum map[Edge]int, edges []Edge) int {
	min := 0
	for i, e := range edges {
		t := trussNum[e]
		if i == 0 || t < min {
			min = t
		}
	}
	return min
}

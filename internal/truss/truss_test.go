package truss

import (
	"math/rand"
	"testing"

	"dssddi/internal/graph"
)

// k4 returns the complete graph on 4 nodes.
func k4() *graph.Undirected {
	g := graph.NewUndirected(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestSupportTriangle(t *testing.T) {
	g := graph.NewUndirected(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	sup := Support(g)
	for e, s := range sup {
		if s != 1 {
			t.Fatalf("edge %v support %d, want 1", e, s)
		}
	}
}

func TestSupportK4(t *testing.T) {
	sup := Support(k4())
	if len(sup) != 6 {
		t.Fatalf("K4 has 6 edges, got %d", len(sup))
	}
	for e, s := range sup {
		if s != 2 {
			t.Fatalf("K4 edge %v support %d, want 2", e, s)
		}
	}
}

func TestSupportPathNoTriangles(t *testing.T) {
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	for e, s := range Support(g) {
		if s != 0 {
			t.Fatalf("path edge %v support %d, want 0", e, s)
		}
	}
}

func TestDecomposeK4(t *testing.T) {
	tn := Decompose(k4())
	for e, k := range tn {
		if k != 4 {
			t.Fatalf("K4 edge %v truss %d, want 4", e, k)
		}
	}
}

func TestDecomposeTrianglePlusTail(t *testing.T) {
	// Triangle {0,1,2} plus pendant edge {2,3}: triangle edges are
	// 3-truss, the tail edge is 2-truss.
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	tn := Decompose(g)
	if tn[MakeEdge(2, 3)] != 2 {
		t.Fatalf("tail edge truss %d, want 2", tn[MakeEdge(2, 3)])
	}
	for _, e := range []Edge{MakeEdge(0, 1), MakeEdge(1, 2), MakeEdge(0, 2)} {
		if tn[e] != 3 {
			t.Fatalf("triangle edge %v truss %d, want 3", e, tn[e])
		}
	}
}

func TestDecomposeTwoK4sJoinedByBridge(t *testing.T) {
	// Two K4s {0..3} and {4..7} joined by bridge {3,4}.
	g := graph.NewUndirected(8)
	for base := 0; base <= 4; base += 4 {
		for u := base; u < base+4; u++ {
			for v := u + 1; v < base+4; v++ {
				g.AddEdge(u, v)
			}
		}
	}
	g.AddEdge(3, 4)
	tn := Decompose(g)
	if tn[MakeEdge(3, 4)] != 2 {
		t.Fatalf("bridge truss %d, want 2", tn[MakeEdge(3, 4)])
	}
	if tn[MakeEdge(0, 1)] != 4 || tn[MakeEdge(5, 6)] != 4 {
		t.Fatal("K4 edges should remain 4-truss")
	}
}

func TestMaxTruss(t *testing.T) {
	g := graph.NewUndirected(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	tn := Decompose(g)
	sub := MaxTruss(g, tn, 3)
	if sub.HasEdge(2, 3) {
		t.Fatal("3-truss must drop the tail edge")
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || !sub.HasEdge(0, 2) {
		t.Fatal("3-truss must keep the triangle")
	}
}

func TestMinTrussOn(t *testing.T) {
	tn := map[Edge]int{MakeEdge(0, 1): 4, MakeEdge(1, 2): 2}
	if MinTrussOn(tn, []Edge{MakeEdge(0, 1), MakeEdge(1, 2)}) != 2 {
		t.Fatal("min truss wrong")
	}
	if MinTrussOn(tn, nil) != 0 {
		t.Fatal("empty edge list should give 0")
	}
}

// Property: truss number is between 2 and maxSupport+2, and the k-truss
// subgraph property holds — within MaxTruss(g, tn, k), every edge has
// support >= k-2.
func TestTrussInvariantOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		g := graph.NewUndirected(n)
		for e := 0; e < n*2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		tn := Decompose(g)
		maxK := 2
		for _, k := range tn {
			if k < 2 {
				t.Fatalf("truss number %d below 2", k)
			}
			if k > maxK {
				maxK = k
			}
		}
		for k := 3; k <= maxK; k++ {
			sub := MaxTruss(g, tn, k)
			for e, s := range Support(sub) {
				if sub.HasEdge(e.U, e.V) && s < k-2 {
					t.Fatalf("seed %d: edge %v in %d-truss has support %d < %d",
						seed, e, k, s, k-2)
				}
			}
		}
	}
}

// Package wal implements the append-only write-ahead log that backs
// the serving layer's patient registry. The format follows the same
// length-prefixed, checksummed discipline as internal/snapshot: a
// fixed magic + version header, then a sequence of records, each
// framed as
//
//	uint32 payload length (little-endian)
//	uint32 CRC32-IEEE over (length bytes || record version || payload)
//	uint64 record version (little-endian)
//	payload bytes
//
// The record version is the replication-layer LWW version of the
// registry record the payload mutates; it rides in the frame (rather
// than the payload) so replay hands the registry the exact version
// each record was acknowledged with, and per-record versions survive
// crashes the same way the payload does.
//
// Each Append writes its frame with a single write(2), so a crash
// mid-append leaves a strict prefix of the frame on disk. Open
// distinguishes the two failure shapes that follow from that:
//
//   - A frame that runs past end-of-file (partial header or partial
//     payload) is a torn tail — the expected residue of a crash. The
//     file is silently truncated back to the last complete record and
//     the log stays writable.
//   - A complete frame whose checksum does not match is interior
//     corruption — bytes that were fully written and later damaged.
//     Open refuses the log with an error naming the offset; replaying
//     past silent damage would serve wrong clinical state.
//
// Durability is tunable per deployment: SyncAlways fsyncs every
// append (an acknowledged write survives machine power loss),
// SyncInterval fsyncs dirty data on a timer (bounded loss on power
// failure, none on process crash — appends reach the OS page cache
// immediately), SyncOff leaves flushing entirely to the OS.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dssddi/internal/obs"
)

const (
	// Magic identifies a registry WAL file.
	Magic = "dssddi-wal\x00"
	// Version is bumped on incompatible format changes. Version 2
	// added the per-record uint64 version to the frame.
	Version = 2
	// maxRecord bounds a single record payload (64 MiB). A length
	// prefix beyond it cannot come from a torn write of a valid
	// record, so it is classified as corruption, which also catches
	// bit flips in the high bytes of a length field.
	maxRecord = 1 << 26

	headerSize = len(Magic) + 4
	frameSize  = 16 // length + crc + record version
)

// SyncPolicy controls when appended records are fsynced.
type SyncPolicy int

const (
	// SyncInterval flushes dirty data on a background timer.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs inside every Append before it returns.
	SyncAlways
	// SyncOff never fsyncs explicitly; the OS flushes when it likes.
	SyncOff
)

// ParseSyncPolicy maps the flag spellings ("always", "interval",
// "off") onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	}
	return "interval"
}

// Options configures Open.
type Options struct {
	Sync SyncPolicy
	// Interval is the flush cadence under SyncInterval (default 100ms).
	Interval time.Duration
}

// Log is an open write-ahead log positioned for appends. All methods
// are safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	opts   Options
	dirty  bool
	closed bool

	stop chan struct{}
	done chan struct{}

	records  atomic.Int64 // records in the log (replayed + appended)
	bytes    atomic.Int64 // payload bytes in the log
	syncs    atomic.Int64 // explicit fsyncs issued
	replayed int64        // records replayed by Open
	torn     int64        // trailing bytes truncated by Open

	// appendLat is the append-to-ack latency distribution (write(2)
	// plus, under SyncAlways, the fsync). Registry writes acknowledge
	// only after Append returns, so this histogram is the durability
	// cost every PUT/PATCH/DELETE pays.
	appendLat obs.Histogram
}

var errClosed = errors.New("wal: log is closed")

// CorruptError reports interior damage found while replaying a log.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: corrupt record at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Open opens (creating if needed) the log at path, replays every
// intact record through replay in append order (handing each its
// stored record version), truncates a torn tail left by a crash, and
// returns the log positioned for appends. A complete record with a
// bad checksum, or a malformed header, aborts with a *CorruptError:
// interior damage must not be served.
func Open(path string, opts Options, replay func(version uint64, payload []byte) error) (*Log, error) {
	if opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, opts: opts}
	if err := l.recover(replay); err != nil {
		f.Close()
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// recover validates the header (writing one into an empty file),
// replays records, truncates a torn tail and seeks to the end.
func (l *Log) recover(replay func(uint64, []byte) error) error {
	st, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat %s: %w", l.path, err)
	}
	if st.Size() == 0 {
		hdr := make([]byte, 0, headerSize)
		hdr = append(hdr, Magic...)
		hdr = appendUint32(hdr, Version)
		if _, err := l.f.Write(hdr); err != nil {
			return fmt.Errorf("wal: write header: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync header: %w", err)
		}
		return nil
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(l.f, hdr); err != nil {
		return &CorruptError{Path: l.path, Offset: 0, Reason: "short header"}
	}
	if string(hdr[:len(Magic)]) != Magic {
		return &CorruptError{Path: l.path, Offset: 0, Reason: "bad magic"}
	}
	if v := readUint32(hdr[len(Magic):]); v != Version {
		return fmt.Errorf("wal: %s: unsupported version %d (have %d)", l.path, v, Version)
	}

	offset := int64(headerSize) // start of the next unread frame
	frame := make([]byte, frameSize)
	var payload []byte
	for {
		n, err := io.ReadFull(l.f, frame)
		if err == io.EOF && n == 0 {
			break // clean end
		}
		if err != nil {
			// Partial frame header: torn tail.
			l.torn = st.Size() - offset
			break
		}
		length := readUint32(frame[:4])
		want := readUint32(frame[4:8])
		version := readUint64(frame[8:])
		if length > maxRecord {
			return &CorruptError{Path: l.path, Offset: offset, Reason: fmt.Sprintf("record length %d exceeds limit", length)}
		}
		if int64(len(payload)) < int64(length) {
			payload = make([]byte, length)
		}
		body := payload[:length]
		if _, err := io.ReadFull(l.f, body); err != nil {
			// Frame header complete, payload missing: torn tail.
			l.torn = st.Size() - offset
			break
		}
		crc := crc32.NewIEEE()
		crc.Write(frame[:4])
		crc.Write(frame[8:])
		crc.Write(body)
		if crc.Sum32() != want {
			// The whole frame is on disk, so this is not a torn
			// write — the bytes were damaged after the fact.
			return &CorruptError{Path: l.path, Offset: offset, Reason: "checksum mismatch"}
		}
		if replay != nil {
			if err := replay(version, body); err != nil {
				return fmt.Errorf("wal: %s: replay record at offset %d: %w", l.path, offset, err)
			}
		}
		offset += frameSize + int64(length)
		l.records.Add(1)
		l.bytes.Add(int64(length))
		l.replayed++
	}
	if l.torn > 0 {
		if err := l.f.Truncate(offset); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync after truncate: %w", err)
		}
	}
	if _, err := l.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek: %w", err)
	}
	return nil
}

// Append durably (per the sync policy) adds one record stamped with
// its registry record version. The frame is written with a single
// write so a crash can only leave a torn tail, never a half-framed
// interior.
func (l *Log) Append(version uint64, payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds %d limit", len(payload), maxRecord)
	}
	t0 := time.Now()
	defer func() { l.appendLat.Observe(time.Since(t0)) }()
	frame := make([]byte, 0, frameSize+len(payload))
	frame = appendUint32(frame, uint32(len(payload)))
	var ver [8]byte
	putUint64(ver[:], version)
	crc := crc32.NewIEEE()
	crc.Write(frame[:4])
	crc.Write(ver[:])
	crc.Write(payload)
	frame = appendUint32(frame, crc.Sum32())
	frame = append(frame, ver[:]...)
	frame = append(frame, payload...)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.records.Add(1)
	l.bytes.Add(int64(len(payload)))
	if l.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.syncs.Add(1)
	} else {
		l.dirty = true
	}
	return nil
}

// Sync flushes any unsynced appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed {
		return errClosed
	}
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.dirty = false
	l.syncs.Add(1)
	return nil
}

// Reset discards every record, leaving only the header — called after
// the registry state has been captured in a checkpoint file.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	if err := l.f.Truncate(int64(headerSize)); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(int64(headerSize), io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset sync: %w", err)
	}
	l.dirty = false
	l.records.Store(0)
	l.bytes.Store(0)
	return nil
}

// Close fsyncs outstanding appends and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.dirty {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	return err
}

func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				if l.f.Sync() == nil {
					l.dirty = false
					l.syncs.Add(1)
				}
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Path returns the file backing the log.
func (l *Log) Path() string { return l.path }

// Records reports the number of records currently in the log.
func (l *Log) Records() int64 { return l.records.Load() }

// Bytes reports the payload bytes currently in the log.
func (l *Log) Bytes() int64 { return l.bytes.Load() }

// Syncs reports how many explicit fsyncs the log has issued.
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// Replayed reports how many records Open replayed.
func (l *Log) Replayed() int64 { return l.replayed }

// TornBytes reports how many trailing bytes Open truncated as a torn
// tail (zero after a clean shutdown).
func (l *Log) TornBytes() int64 { return l.torn }

// AppendLatency snapshots the append-to-ack latency distribution.
func (l *Log) AppendLatency() obs.HistogramSnapshot { return l.appendLat.Snapshot() }

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func readUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func readUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openCollect(t *testing.T, path string, opts Options) (*Log, [][]byte) {
	t.Helper()
	var got [][]byte
	l, err := Open(path, opts, func(_ uint64, p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, got
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.wal")
	l, got := openCollect(t, path, Options{Sync: SyncAlways})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	var want [][]byte
	for i := 0; i < 25; i++ {
		rec := []byte(fmt.Sprintf("record-%d-%s", i, strings.Repeat("x", i*7)))
		want = append(want, rec)
		if err := l.Append(uint64(i)+1, rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if l.Records() != 25 {
		t.Fatalf("Records = %d, want 25", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := openCollect(t, path, Options{})
	defer l2.Close()
	if l2.Replayed() != 25 || l2.TornBytes() != 0 {
		t.Fatalf("Replayed=%d TornBytes=%d, want 25, 0", l2.Replayed(), l2.TornBytes())
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// Record versions ride in the frame, checksummed with the payload,
// and replay hands back exactly the version each record was appended
// with — including versions that do not fit in 32 bits.
func TestVersionRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.wal")
	l, _ := openCollect(t, path, Options{Sync: SyncAlways})
	want := []uint64{1, 7, 7, 42, 1<<40 + 3, ^uint64(0)}
	for i, v := range want {
		if err := l.Append(v, []byte(fmt.Sprintf("versioned-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	var got []uint64
	l2, err := Open(path, Options{}, func(v uint64, _ []byte) error {
		got = append(got, v)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replayed versions %v, want %v", got, want)
	}

	// A flipped version byte breaks the frame checksum: versions are
	// protected by the same CRC as the payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+8+2] ^= 0x01 // third byte of the first record's version field
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}, nil); err == nil {
		t.Fatal("Open accepted a log with a corrupted version field")
	}
}

// A crash mid-append leaves a prefix of the final frame. Every cut
// point — inside the length, inside the crc, inside the payload —
// must recover to the last complete record and leave the log
// appendable.
func TestTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.wal")
	l, _ := openCollect(t, path, Options{Sync: SyncAlways})
	for i := 0; i < 5; i++ {
		if err := l.Append(0, []byte(fmt.Sprintf("intact-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Append(0, []byte("the-final-record-that-tears")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := frameSize + len("the-final-record-that-tears")

	for cut := 1; cut < lastFrame; cut += 3 {
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, whole[:len(whole)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, got := openCollect(t, torn, Options{Sync: SyncAlways})
		if len(got) != 5 {
			t.Fatalf("cut=%d: replayed %d records, want 5", cut, len(got))
		}
		if tl.TornBytes() == 0 {
			t.Fatalf("cut=%d: TornBytes = 0, want > 0", cut)
		}
		// The log must accept appends after truncating the tear...
		if err := tl.Append(0, []byte("post-crash")); err != nil {
			t.Fatalf("cut=%d: Append after recovery: %v", cut, err)
		}
		tl.Close()
		// ...and a third open sees exactly 5 intact + 1 new record.
		tl2, got := openCollect(t, torn, Options{})
		if len(got) != 6 || string(got[5]) != "post-crash" {
			t.Fatalf("cut=%d: after re-append replayed %d records (last %q)", cut, len(got), got[len(got)-1])
		}
		tl2.Close()
	}
}

// A bit flip in the middle of the log is not a torn write: the bytes
// are all there, they are just wrong. Open must refuse with an error
// that names the damage rather than silently dropping records.
func TestInteriorCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.wal")
	l, _ := openCollect(t, path, Options{Sync: SyncAlways})
	for i := 0; i < 4; i++ {
		if err := l.Append(0, []byte(fmt.Sprintf("record-number-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	// Flip one payload bit in the second record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := frameSize + len("record-number-0")
	raw[headerSize+rec+frameSize+3] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(path, Options{}, func(uint64, []byte) error { return nil })
	if err == nil {
		t.Fatal("Open accepted a log with an interior bit flip")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CorruptError", err)
	}
	if ce.Offset != int64(headerSize+rec) {
		t.Fatalf("corruption reported at offset %d, want %d", ce.Offset, headerSize+rec)
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("error %q does not name the checksum mismatch", err)
	}

	// A bit flip in a length prefix must also be rejected, not
	// misread as a giant torn record.
	raw2 := append([]byte(nil), raw...)
	raw2[headerSize+rec+3] = 0xff // absurd length high byte
	os.WriteFile(path, raw2, 0o644)
	if _, err := Open(path, Options{}, nil); err == nil {
		t.Fatal("Open accepted a log with a corrupted length prefix")
	}
}

func TestResetDiscardsRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.wal")
	l, _ := openCollect(t, path, Options{Sync: SyncAlways})
	for i := 0; i < 8; i++ {
		l.Append(0, []byte("soon-compacted"))
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if l.Records() != 0 || l.Bytes() != 0 {
		t.Fatalf("after Reset: Records=%d Bytes=%d, want 0,0", l.Records(), l.Bytes())
	}
	if err := l.Append(0, []byte("after-compaction")); err != nil {
		t.Fatalf("Append after Reset: %v", err)
	}
	l.Close()

	l2, got := openCollect(t, path, Options{})
	defer l2.Close()
	if len(got) != 1 || string(got[0]) != "after-compaction" {
		t.Fatalf("after Reset+Append replay = %q, want [after-compaction]", got)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "reg.wal")
			l, _ := openCollect(t, path, Options{Sync: pol, Interval: 10 * time.Millisecond})
			for i := 0; i < 10; i++ {
				if err := l.Append(0, []byte("payload")); err != nil {
					t.Fatalf("Append: %v", err)
				}
			}
			if pol == SyncAlways && l.Syncs() < 10 {
				t.Fatalf("SyncAlways issued %d fsyncs for 10 appends", l.Syncs())
			}
			if pol == SyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for l.Syncs() == 0 && time.Now().Before(deadline) {
					time.Sleep(5 * time.Millisecond)
				}
				if l.Syncs() == 0 {
					t.Fatal("SyncInterval never flushed")
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			l2, got := openCollect(t, path, Options{})
			defer l2.Close()
			if len(got) != 10 {
				t.Fatalf("replayed %d records, want 10", len(got))
			}
		})
	}
}

func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.wal")
	l, _ := openCollect(t, path, Options{Sync: SyncInterval, Interval: 5 * time.Millisecond})
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append(0, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, got := openCollect(t, path, Options{})
	defer l2.Close()
	if len(got) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(got), writers*per)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reg.wal")
	l, _ := openCollect(t, path, Options{})
	l.Close()
	if err := l.Append(0, []byte("late")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "": SyncInterval, "off": SyncOff,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted an unknown policy")
	}
}

package dssddi

import (
	"math"
	"testing"
)

// TestSuggestForMatchesSuggest pins the root online API: for training
// patients, SuggestFor/ScoresFor over their own recorded profile are
// bitwise identical to the transductive Suggest/Scores index path, and
// the embed-once handle behaves like the one-shot calls.
func TestSuggestForMatchesSuggest(t *testing.T) {
	sys, data := trainedSystem(t)
	for _, p := range data.TrainPatients()[:5] {
		profile := PatientProfile{Regimen: data.Medications(p), Features: data.Features(p)}

		want, err := sys.Suggest(p, 4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.SuggestFor(profile, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("patient %d: %d suggestions, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i].DrugID != want[i].DrugID || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				t.Fatalf("patient %d suggestion %d diverged: %+v vs %+v", p, i, got[i], want[i])
			}
		}

		wantRows, err := sys.Scores([]int{p})
		if err != nil {
			t.Fatal(err)
		}
		gotRow, err := sys.ScoresFor(profile)
		if err != nil {
			t.Fatal(err)
		}
		for j := range wantRows[0] {
			if math.Float64bits(gotRow[j]) != math.Float64bits(wantRows[0][j]) {
				t.Fatalf("patient %d score %d diverged", p, j)
			}
		}

		// Embed once, score twice: same bits, and the Into form agrees.
		e, err := sys.EmbedPatient(profile)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, data.NumDrugs())
		if err := sys.ScoresForEmbeddingInto(dst, e); err != nil {
			t.Fatal(err)
		}
		for j := range dst {
			if math.Float64bits(dst[j]) != math.Float64bits(gotRow[j]) {
				t.Fatalf("embedding reuse diverged at drug %d", j)
			}
		}
	}

	// An unseen profile (regimen-only) must score and explain.
	suggs, ex, err := sys.ExplainFor(PatientProfile{Regimen: []int{0, 2, 5}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggs) != 3 || ex.Text == "" {
		t.Fatalf("ExplainFor: %d suggestions, text %q", len(suggs), ex.Text)
	}
}

func TestOnlineAPIValidation(t *testing.T) {
	sys := New(DefaultConfig())
	if _, err := sys.SuggestFor(PatientProfile{Regimen: []int{0}}, 3); err == nil {
		t.Fatal("SuggestFor before Train must error")
	}

	trained, data := trainedSystem(t)
	if _, err := trained.SuggestFor(PatientProfile{Regimen: []int{-1}}, 3); err == nil {
		t.Fatal("negative drug id must error")
	}
	if _, err := trained.ScoresFor(PatientProfile{}); err == nil {
		t.Fatal("empty profile must error")
	}
	if _, err := trained.EmbedPatient(PatientProfile{Features: make([]float64, 3)}); err == nil {
		t.Fatal("wrong feature width must error")
	}

	// Embeddings are bound to the system that produced them.
	e, err := trained.EmbedPatient(PatientProfile{Regimen: data.Medications(data.TrainPatients()[0])})
	if err != nil {
		t.Fatal(err)
	}
	other, _ := trainedSystem(t)
	if _, err := other.SuggestForEmbedding(e, 3); err == nil {
		t.Fatal("foreign embedding must be rejected")
	}
	if err := trained.ScoresForEmbeddingInto(make([]float64, 1), e); err == nil {
		t.Fatal("short destination row must error")
	}
}

#!/usr/bin/env bash
# chaos-smoke: durability, replication and overload resilience, end to
# end. Trains a tiny model, boots a 3-backend fleet with registry
# replication R=2 (every registered patient on its ring owner plus one
# successor), where backend 0 runs with a WAL-backed registry
# (-wal-sync always) AND sits behind a fault-injecting TCP proxy
# (latency + connection resets + mid-body drops), then:
#
#   1. registers 20 patients through the router and records their
#      suggest responses,
#   2. kill -9's backend 0 mid-flight under a chaotic mixed workload,
#   3. restarts it on the same address from the same WAL,
#   4. asserts ZERO lost registrations (every patient still answers,
#      bitwise-identical to its pre-crash response), a bounded error
#      rate for the workload that ran across the crash, and that 200s
#      sharing an X-Epoch stayed bitwise-consistent (-verify-epoch),
#   5. PERMANENTLY kill -9's backend 2 mid-flight under a -strict
#      mixed workload: with R=2 every registered read fails over to
#      the surviving replica, so zero requests fail, zero
#      registrations are lost (loadgen -verify-registry re-reads every
#      acknowledged id) and the router's pinned-503 counter stays 0,
#   6. restarts backend 2 EMPTY (no WAL — a rebuilt node) on the same
#      address and asserts anti-entropy reconverges it before the
#      health machine readmits it: the fleet verify endpoint reports
#      per-backend digest agreement over every record,
#   7. runs the replication counters through the strict Prometheus
#      parser and gates BENCH_chaos.json on lost_registrations == 0
#      (benchdiff -replication-gate),
#   8. separately floods a 1-inflight/1-queue backend and asserts
#      admission control shed load with fast 503s (sheds > 0).
#
# Records both chaotic workloads plus the replication counters into
# BENCH_chaos.json in the repo root. Used by `make chaos-smoke` and
# the CI "chaos" job.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/dssddi" ./cmd/dssddi
go build -o "$WORK/dssddi-serve" ./cmd/dssddi-serve
go build -o "$WORK/dssddi-router" ./cmd/dssddi-router
go build -o "$WORK/loadgen" ./cmd/loadgen
go build -o "$WORK/chaosproxy" ./cmd/chaosproxy
go build -o "$WORK/obscheck" ./cmd/obscheck
go build -o "$WORK/benchdiff" ./cmd/benchdiff

echo "== train a tiny model"
"$WORK/dssddi" train -patients 70 -ddi-epochs 5 -md-epochs 10 -o "$WORK/model.snap"

wait_file() {
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "timed out waiting for $1" >&2
    return 1
}

# boot_b0 <addr>: the durable backend. First boot uses 127.0.0.1:0;
# the crash-recovery restart reuses the recorded address so the router
# (and the chaos proxy) find the reborn process without reconfiguring.
boot_b0() {
    GOMAXPROCS=1 "$WORK/dssddi-serve" -m "$WORK/model.snap" -workers 1 \
        -registry-wal "$WORK/b0.wal" -wal-sync always \
        -addr "$1" -addr-file "$WORK/b0.txt" &
    B0_PID=$!
    PIDS+=($B0_PID)
}

# boot_b2 <addr>: the plain backend the permanent-kill scenario
# murders and later reboots EMPTY (no WAL) on the same address, so the
# rejoin must reconverge through anti-entropy alone.
boot_b2() {
    GOMAXPROCS=1 "$WORK/dssddi-serve" -m "$WORK/model.snap" -workers 1 \
        -addr "$1" -addr-file "$WORK/b2.txt" &
    B2_PID=$!
    PIDS+=($B2_PID)
}

echo "== boot the fleet: b0 (WAL, behind chaos proxy) + b1 + b2 + router (R=2)"
rm -f "$WORK/b0.txt"
boot_b0 127.0.0.1:0
wait_file "$WORK/b0.txt"
B0=$(cat "$WORK/b0.txt")
GOMAXPROCS=1 "$WORK/dssddi-serve" -m "$WORK/model.snap" -workers 1 \
    -addr 127.0.0.1:0 -addr-file "$WORK/b1.txt" &
PIDS+=($!)
rm -f "$WORK/b2.txt"
boot_b2 127.0.0.1:0
wait_file "$WORK/b1.txt"; B1=$(cat "$WORK/b1.txt")
wait_file "$WORK/b2.txt"; B2=$(cat "$WORK/b2.txt")

# The chaos proxy fronts b0: added latency, hard RSTs, responses cut
# off mid-body. The router only ever sees the proxy's address.
"$WORK/chaosproxy" -target "$B0" -latency 2ms -jitter 3ms \
    -reset-prob 0.08 -drop-prob 0.04 -seed 7 -addr-file "$WORK/px.txt" &
PIDS+=($!)
wait_file "$WORK/px.txt"
PX=$(cat "$WORK/px.txt")

"$WORK/dssddi-router" -backends "$PX,$B1,$B2" -replicas 2 -write-quorum 1 \
    -probe-interval 250ms \
    -fail-after 5 -cooldown 500ms -retries 5 -retry-backoff 10ms \
    -addr 127.0.0.1:0 -addr-file "$WORK/router.txt" &
PIDS+=($!)
wait_file "$WORK/router.txt"
ROUTER=$(cat "$WORK/router.txt")
echo "   router on $ROUTER over chaos($B0)=$PX $B1 $B2"

ok=""
for _ in $(seq 1 50); do
    if curl -sf "http://$ROUTER/healthz" | grep -q '"healthy_backends":3'; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "router never saw 3 healthy backends"; curl -s "http://$ROUTER/healthz"; exit 1; }

# put_retry <url> <body>: the router retries idempotent full-replace
# PUTs across the replica group itself, but the chaos proxy can still
# eat the response on the router->client leg's final attempt. The
# client retries on top — exactly what a real client does on a reset.
put_retry() {
    for _ in $(seq 1 20); do
        code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "$1" -d "$2" || echo 000)
        case "$code" in 200|201) return 0 ;; esac
        sleep 0.05
    done
    echo "PUT $1 never succeeded (last code $code)" >&2
    return 1
}

echo "== register 20 patients through the chaotic fleet, record their answers"
mkdir -p "$WORK/pre"
for i in $(seq 0 19); do
    put_retry "http://$ROUTER/v1/patients/chaos-$i" '{"regimen": [0, 1, 2]}'
done
for i in $(seq 0 19); do
    for _ in $(seq 1 20); do
        if curl -sf -H 'Cache-Control: no-cache' -X POST "http://$ROUTER/v1/suggest" \
            -d "{\"patient_id\": \"chaos-$i\", \"k\": 3}" -o "$WORK/pre/$i.json"; then break; fi
        sleep 0.05
    done
    [ -s "$WORK/pre/$i.json" ] || { echo "no pre-crash suggest for chaos-$i"; exit 1; }
done

echo "== chaotic mixed workload across a kill -9 + WAL restart of b0"
rm -f BENCH_chaos.json
"$WORK/loadgen" -addr "$ROUTER" -cluster -mix -duration 8s -concurrency 12 \
    -verify-epoch -verify-registry -max-error-rate 0.5 -json BENCH_chaos.json &
LOADGEN_PID=$!
sleep 2
echo "   kill -9 backend 0 ($B0, pid $B0_PID)"
kill -9 "$B0_PID" 2>/dev/null || true
wait "$B0_PID" 2>/dev/null || true
sleep 1
echo "   restart backend 0 on $B0 from $WORK/b0.wal"
rm -f "$WORK/b0.txt"
boot_b0 "$B0"
wait_file "$WORK/b0.txt"
wait "$LOADGEN_PID" || { echo "chaotic workload exceeded the error budget"; exit 1; }

echo "== fleet healed: router sees 3 healthy backends again"
ok=""
for _ in $(seq 1 100); do
    if curl -sf "http://$ROUTER/healthz" | grep -q '"healthy_backends":3'; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "fleet never healed after the restart"; curl -s "http://$ROUTER/healthz"; exit 1; }

echo "== zero lost registrations: every patient answers, bitwise-identical"
for i in $(seq 0 19); do
    got=""
    for _ in $(seq 1 20); do
        if curl -sf -H 'Cache-Control: no-cache' -X POST "http://$ROUTER/v1/suggest" \
            -d "{\"patient_id\": \"chaos-$i\", \"k\": 3}" -o "$WORK/post.json"; then got=1; break; fi
        sleep 0.05
    done
    [ -n "$got" ] || { echo "chaos-$i lost after crash recovery"; exit 1; }
    cmp -s "$WORK/pre/$i.json" "$WORK/post.json" || {
        echo "chaos-$i answer diverged across the crash:"
        diff "$WORK/pre/$i.json" "$WORK/post.json" || true
        exit 1
    }
done
echo "   20/20 registrations survived kill -9, answers bitwise-identical"

echo "== permanent kill: backend 2 dies mid -strict load, replicas carry every request"
"$WORK/loadgen" -addr "$ROUTER" -cluster -mix -strict -duration 6s -concurrency 12 \
    -seed 2 -entry-prefix permakill- -verify-epoch -verify-registry \
    -json BENCH_chaos.json -append &
LOADGEN_PID=$!
sleep 1.5
echo "   kill -9 backend 2 ($B2, pid $B2_PID) — and leave it dead"
kill -9 "$B2_PID" 2>/dev/null || true
wait "$B2_PID" 2>/dev/null || true
wait "$LOADGEN_PID" || { echo "requests failed during the permanent kill (replication should have carried them)"; exit 1; }

echo "== replica failover left no pinned 503s and served reads from replicas"
metrics=$(curl -sf "http://$ROUTER/metricsz")
echo "$metrics" | tr ',{}' '\n\n\n' | grep -q '"pinned_unavailable":0$' || {
    echo "pinned-key 503s during the permanent kill (should be served by replicas):"
    echo "$metrics" | tr ',{}' '\n\n\n' | grep pinned
    exit 1
}
echo "$metrics" | tr ',{}' '\n\n\n' | grep '"replica_reads":' | grep -vq ':0$' || {
    echo "no reads were served by replicas during the permanent kill:"
    echo "$metrics" | tr ',{}' '\n\n\n' | grep replica
    exit 1
}

echo "== every registered patient still answers with backend 2 dead"
for i in $(seq 0 19); do
    got=""
    for _ in $(seq 1 20); do
        if curl -sf -H 'Cache-Control: no-cache' -X POST "http://$ROUTER/v1/suggest" \
            -d "{\"patient_id\": \"chaos-$i\", \"k\": 3}" -o "$WORK/post.json"; then got=1; break; fi
        sleep 0.05
    done
    [ -n "$got" ] || { echo "chaos-$i unreachable with one backend permanently dead"; exit 1; }
    cmp -s "$WORK/pre/$i.json" "$WORK/post.json" || {
        echo "chaos-$i answer diverged when served by a replica:"
        diff "$WORK/pre/$i.json" "$WORK/post.json" || true
        exit 1
    }
done
echo "   20/20 registered reads served, bitwise-identical, owner permanently dead"

echo "== rejoin empty: backend 2 reboots with no state, anti-entropy reconverges it"
rm -f "$WORK/b2.txt"
boot_b2 "$B2"
wait_file "$WORK/b2.txt"
ok=""
for _ in $(seq 1 100); do
    if curl -sf "http://$ROUTER/healthz" | grep -q '"healthy_backends":3'; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "empty backend 2 never reconverged into rotation"; curl -s "http://$ROUTER/healthz"; exit 1; }
verify=$(curl -s -o "$WORK/verify.json" -w '%{http_code}' "http://$ROUTER/v1/admin/registry/verify")
[ "$verify" = 200 ] || { echo "fleet digest verification failed after the empty rejoin:"; cat "$WORK/verify.json"; exit 1; }
grep -q '"ok":true' "$WORK/verify.json" || { echo "verify endpoint reports divergence:"; cat "$WORK/verify.json"; exit 1; }
echo "   backend 2 readmitted only after per-shard digests reconverged"

echo "== replication counters round-trip the strict Prometheus parser"
"$WORK/obscheck" prom "http://$ROUTER/metricsz?format=prometheus" \
    -require dssddi_router_replica_reads_total,dssddi_router_replication_fanouts_total,dssddi_router_anti_entropy_syncs_total,dssddi_router_replication_lag_seconds
"$WORK/obscheck" prom "http://$B1/metricsz?format=prometheus" \
    -require dssddi_replica_applies_total,dssddi_replication_apply_duration_seconds

echo "== replication gate: BENCH_chaos.json records zero lost registrations"
"$WORK/benchdiff" -replication-gate BENCH_chaos.json

echo "== overload: a 1-inflight/1-queue backend sheds with fast 503s"
GOMAXPROCS=1 "$WORK/dssddi-serve" -m "$WORK/model.snap" -workers 1 \
    -max-inflight 1 -max-queue 1 -batch-window 50ms -cache -1 \
    -addr 127.0.0.1:0 -addr-file "$WORK/tiny.txt" &
PIDS+=($!)
wait_file "$WORK/tiny.txt"
TINY=$(cat "$WORK/tiny.txt")
codes=$(for _ in $(seq 1 30); do
    curl -s -o /dev/null -w '%{http_code}\n' -H 'Cache-Control: no-cache' \
        -X POST "http://$TINY/v1/suggest" -d '{"patient": 0, "k": 3}' &
done; wait)
shed=$(echo "$codes" | grep -c '^503$' || true)
served=$(echo "$codes" | grep -c '^200$' || true)
echo "   30 concurrent requests -> $served x200, $shed x503"
[ "$shed" -gt 0 ] || { echo "overloaded backend never shed load"; exit 1; }
[ "$served" -gt 0 ] || { echo "overloaded backend served nothing"; exit 1; }
curl -sf "http://$TINY/metricsz" | grep -q '"sheds":' || { echo "/metricsz does not report sheds"; exit 1; }

echo "== OK: chaos smoke passed"

#!/usr/bin/env bash
# cluster-smoke: the fleet tier, end to end. Trains a tiny model,
# boots 1 dssddi-router + 3 dssddi-serve backends, smokes every
# endpoint through the router (sticky consistent-hash routing,
# shard-local registry), benchmarks a single backend vs the fleet,
# runs the mixed online workload with -strict through a mid-load
# coordinated rolling reload (zero non-2xx AND zero transport errors
# allowed), verifies every backend converged on the new epoch, and
# asserts aggregate cached-suggest throughput scales with replica
# count. Records everything into BENCH_cluster.json in the repo root.
# Used by `make cluster-smoke` and the CI "cluster" job.
#
# Each backend runs with GOMAXPROCS=1 (and serial kernels), so "one
# backend" is a fixed-size unit and the single-vs-fleet comparison
# measures replication, not incidental parallelism inside one process.
# The >= 2x scaling gate runs on the COLD scoring path: a cold suggest
# costs a backend ~300us of CPU, so backend capacity is the bottleneck
# and replication visibly multiplies it. A cached suggest costs ~45us
# — less than the proxy + load-generator harness sharing the same
# cores — so the cached fleet/single ratio is recorded but
# informational (it measures the harness, not replication). The gate
# is enforced when the machine has at least 3 cores to scale onto (CI
# runners do); on smaller machines it is reported but not enforced —
# replicas cannot out-run the physical CPU they share.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/dssddi" ./cmd/dssddi
go build -o "$WORK/dssddi-serve" ./cmd/dssddi-serve
go build -o "$WORK/dssddi-router" ./cmd/dssddi-router
go build -o "$WORK/loadgen" ./cmd/loadgen

echo "== train two tiny models (same cohort, different seeds) for the rolling reload"
"$WORK/dssddi" train -patients 70 -ddi-epochs 5 -md-epochs 10 -o "$WORK/model.snap"
"$WORK/dssddi" train -patients 70 -seed 2 -ddi-epochs 5 -md-epochs 10 -o "$WORK/model2.snap"

# boot_backend <addr-file>: one fixed-size serving unit.
boot_backend() {
    GOMAXPROCS=1 "$WORK/dssddi-serve" -m "$WORK/model.snap" -workers 1 \
        -addr 127.0.0.1:0 -addr-file "$1" &
    PIDS+=($!)
}

wait_file() {
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "timed out waiting for $1" >&2
    return 1
}

echo "== single-backend baseline (1 unit, cached + cold suggest paths)"
boot_backend "$WORK/b0.txt"
wait_file "$WORK/b0.txt"
B0=$(cat "$WORK/b0.txt")
echo "   backend 0 on $B0"
"$WORK/loadgen" -addr "$B0" -duration 3s -concurrency 16 -json BENCH_cluster.json
"$WORK/loadgen" -addr "$B0" -cold -duration 3s -concurrency 16 -json BENCH_cluster.json -append

echo "== boot 2 more backends and the router"
boot_backend "$WORK/b1.txt"
boot_backend "$WORK/b2.txt"
wait_file "$WORK/b1.txt"
wait_file "$WORK/b2.txt"
B1=$(cat "$WORK/b1.txt")
B2=$(cat "$WORK/b2.txt")
"$WORK/dssddi-router" -backends "$B0,$B1,$B2" -probe-interval 250ms \
    -addr 127.0.0.1:0 -addr-file "$WORK/router.txt" &
PIDS+=($!)
wait_file "$WORK/router.txt"
ROUTER=$(cat "$WORK/router.txt")
echo "   router on $ROUTER over $B0 $B1 $B2"

echo "== router reports a fully healthy fleet"
ok=""
for _ in $(seq 1 50); do
    if curl -sf "http://$ROUTER/healthz" | grep -q '"healthy_backends":3'; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "router never saw 3 healthy backends"; curl -s "http://$ROUTER/healthz"; exit 1; }

echo "== smoke every endpoint through the router"
curl -sf -X POST "http://$ROUTER/v1/suggest" -d '{"patient": 0, "k": 3}' >/dev/null
curl -sf -X POST "http://$ROUTER/v1/scores" -d '{"patients": [0, 1]}' >/dev/null
curl -sf -X POST "http://$ROUTER/v1/explain" -d '{"patient": 0, "k": 3}' >/dev/null
curl -sf -X POST "http://$ROUTER/v1/alerts" -d '{"drugs": [0, 1, 2], "patient": 0}' >/dev/null
curl -sf "http://$ROUTER/metricsz" >/dev/null

echo "== sticky routing: one patient, one backend"
owner=$(curl -sf -o /dev/null -w '%{header_json}' -X POST "http://$ROUTER/v1/suggest" -d '{"patient": 5, "k": 2}' | grep -o '"x-backend":\["[^"]*"\]')
for _ in 1 2 3; do
    again=$(curl -sf -o /dev/null -w '%{header_json}' -X POST "http://$ROUTER/v1/suggest" -d '{"patient": 5, "k": 2}' | grep -o '"x-backend":\["[^"]*"\]')
    [ "$again" = "$owner" ] || { echo "patient 5 moved between backends: $owner vs $again"; exit 1; }
done

echo "== registry through the router: register, suggest by id, delete"
code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "http://$ROUTER/v1/patients/cluster-smoke" -d '{"regimen": [0, 1, 2]}')
[ "$code" = "201" ] || { echo "registering via router returned $code, want 201"; exit 1; }
curl -sf -X POST "http://$ROUTER/v1/suggest" -d '{"patient_id": "cluster-smoke", "k": 3}' >/dev/null
curl -sf -X GET "http://$ROUTER/v1/patients/cluster-smoke" >/dev/null
curl -sf -X DELETE "http://$ROUTER/v1/patients/cluster-smoke" >/dev/null
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ROUTER/v1/suggest" -d '{"patient_id": "cluster-smoke"}')
[ "$code" = "404" ] || { echo "deleted registry patient via router returned $code, want 404"; exit 1; }

echo "== fleet bench (3 units behind the router, cached + cold suggest paths)"
"$WORK/loadgen" -addr "$ROUTER" -cluster -duration 3s -concurrency 32 -json BENCH_cluster.json -append
"$WORK/loadgen" -addr "$ROUTER" -cluster -cold -duration 3s -concurrency 32 -json BENCH_cluster.json -append

echo "== mixed online workload through a mid-load coordinated rolling reload: zero drops allowed"
"$WORK/loadgen" -addr "$ROUTER" -cluster -mix -strict -duration 6s -concurrency 12 -json BENCH_cluster.json -append &
LOADGEN_PID=$!
sleep 1.5
curl -s -X POST "http://$ROUTER/v1/admin/reload" -d "{\"path\": \"$WORK/model2.snap\"}" >"$WORK/rollout1.json"
grep -q '"ok":true' "$WORK/rollout1.json" || { echo "rollout 1 not clean:"; cat "$WORK/rollout1.json"; exit 1; }
sleep 1
curl -s -X POST "http://$ROUTER/v1/admin/reload" -d "{\"path\": \"$WORK/model.snap\"}" >"$WORK/rollout2.json"
grep -q '"ok":true' "$WORK/rollout2.json" || { echo "rollout 2 not clean:"; cat "$WORK/rollout2.json"; exit 1; }
wait "$LOADGEN_PID" || { echo "loadgen saw failed requests during the rolling reloads"; exit 1; }

echo "== every backend converged on epoch 3 (1 boot + 2 rollouts)"
for b in "$B0" "$B1" "$B2"; do
    epoch=$(curl -sf "http://$b/healthz" | sed 's/.*"epoch":\([0-9]*\).*/\1/')
    [ "$epoch" = "3" ] || { echo "backend $b is on epoch $epoch, want 3"; exit 1; }
done

echo "== rollback guard: a rollout from a missing snapshot aborts cleanly"
code=$(curl -s -o "$WORK/rollout3.json" -w '%{http_code}' -X POST "http://$ROUTER/v1/admin/reload" -d "{\"path\": \"$WORK/nope.snap\"}")
[ "$code" = "502" ] || { echo "broken rollout returned $code, want 502"; cat "$WORK/rollout3.json"; exit 1; }
grep -q '"status":"skipped"' "$WORK/rollout3.json" || { echo "broken rollout did not skip the rest of the fleet"; cat "$WORK/rollout3.json"; exit 1; }
for b in "$B0" "$B1" "$B2"; do
    epoch=$(curl -sf "http://$b/healthz" | sed 's/.*"epoch":\([0-9]*\).*/\1/')
    [ "$epoch" = "3" ] || { echo "backend $b moved to epoch $epoch on an aborted rollout"; exit 1; }
done

echo "== scaling: fleet scoring throughput vs a single unit"
CORES=$(nproc)
MIN_SCALE="${CLUSTER_MIN_SCALE:-2.0}"
echo "   cached-path ratio (informational: the ~45us cached request is cheaper than the proxy hop)"
go run ./cmd/benchdiff -scale "cluster-suggest:suggest:0.1" BENCH_cluster.json || true
if [ "$CORES" -ge 3 ]; then
    go run ./cmd/benchdiff -scale "cluster-suggest-cold:suggest-cold:$MIN_SCALE" BENCH_cluster.json
else
    echo "   (only $CORES core(s): 3 replicas share one CPU, so the >= ${MIN_SCALE}x gate is informational here)"
    go run ./cmd/benchdiff -scale "cluster-suggest-cold:suggest-cold:$MIN_SCALE" BENCH_cluster.json \
        || echo "   scaling below ${MIN_SCALE}x on this machine — enforced on >=3-core runners (CI)"
fi

echo "== OK: cluster smoke passed"

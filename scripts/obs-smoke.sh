#!/usr/bin/env bash
# obs-smoke: the observability layer, end to end. Trains a tiny model,
# boots 1 dssddi-router + 2 dssddi-serve backends with 100% trace
# sampling, JSON logging and pprof enabled, drives mixed load whose
# every response must echo X-Request-Id (loadgen -strict enforces the
# echo) and carry X-Epoch, then proves end-to-end trace correlation: a
# known request id is looked up in the router's /debug/tracez AND in
# the owning backend's, with stage spans that sum to the measured
# latency (obscheck asserts both). Finally both tiers' Prometheus
# expositions are round-tripped through the strict in-repo parser with
# histogram-consistency checks. Used by `make obs-smoke` and the CI
# "obs" job.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/dssddi" ./cmd/dssddi
go build -o "$WORK/dssddi-serve" ./cmd/dssddi-serve
go build -o "$WORK/dssddi-router" ./cmd/dssddi-router
go build -o "$WORK/loadgen" ./cmd/loadgen
go build -o "$WORK/obscheck" ./cmd/obscheck

echo "== train a tiny model"
"$WORK/dssddi" train -patients 70 -ddi-epochs 5 -md-epochs 10 -o "$WORK/model.snap"

wait_file() {
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "timed out waiting for $1" >&2
    return 1
}

echo "== boot 2 traced backends + the router (sampling 100%, JSON logs, pprof)"
for i in 0 1; do
    "$WORK/dssddi-serve" -m "$WORK/model.snap" -addr 127.0.0.1:0 -addr-file "$WORK/b$i.txt" \
        -trace-sample 1 -trace-ring 256 -slow-ms 250 -pprof \
        -log-format json -log-level info 2>"$WORK/b$i.log" &
    PIDS+=($!)
done
wait_file "$WORK/b0.txt"
wait_file "$WORK/b1.txt"
B0=$(cat "$WORK/b0.txt")
B1=$(cat "$WORK/b1.txt")
"$WORK/dssddi-router" -backends "$B0,$B1" -probe-interval 250ms \
    -addr 127.0.0.1:0 -addr-file "$WORK/router.txt" \
    -trace-sample 1 -trace-ring 256 -slow-ms 250 -pprof \
    -log-format json -log-level info 2>"$WORK/router.log" &
PIDS+=($!)
wait_file "$WORK/router.txt"
ROUTER=$(cat "$WORK/router.txt")
echo "   router on $ROUTER over $B0 $B1"

echo "== router reports a fully healthy fleet"
ok=""
for _ in $(seq 1 50); do
    if curl -sf "http://$ROUTER/healthz" | grep -q '"healthy_backends":2'; then ok=1; break; fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "router never saw 2 healthy backends"; curl -s "http://$ROUTER/healthz"; exit 1; }

echo "== boot logs carry the structured build identity"
grep -q '"msg":"boot"' "$WORK/router.log" || { echo "router boot log missing"; cat "$WORK/router.log"; exit 1; }
grep -q '"build":{"commit"' "$WORK/router.log" || { echo "router boot log missing build info"; cat "$WORK/router.log"; exit 1; }
curl -sf "http://$ROUTER/healthz" | grep -q '"build":{"commit"' || { echo "router healthz missing build info"; exit 1; }
curl -sf "http://$B0/healthz" | grep -q '"build":{"commit"' || { echo "backend healthz missing build info"; exit 1; }

echo "== pprof answers on both tiers (flag-gated)"
curl -sf "http://$ROUTER/debug/pprof/cmdline" >/dev/null
curl -sf "http://$B0/debug/pprof/cmdline" >/dev/null

echo "== mixed load: every response must echo X-Request-Id (loadgen -strict) and carry X-Epoch"
"$WORK/loadgen" -addr "$ROUTER" -cluster -mix -strict -duration 3s -concurrency 8
for i in $(seq 1 10); do
    headers=$(curl -sf -o /dev/null -w '%{header_json}' -X POST "http://$ROUTER/v1/suggest" -d "{\"patient\": $i, \"k\": 2}")
    echo "$headers" | grep -q '"x-request-id"' || { echo "response $i missing X-Request-Id"; echo "$headers"; exit 1; }
    echo "$headers" | grep -q '"x-epoch"' || { echo "response $i missing X-Epoch"; echo "$headers"; exit 1; }
done

echo "== end-to-end trace correlation: one known request, both tiers"
RID="obs-smoke-$$"
headers=$(curl -sf -o /dev/null -w '%{header_json}' -X POST "http://$ROUTER/v1/suggest" \
    -H "X-Request-Id: $RID" -H "Cache-Control: no-cache" -d '{"patient": 33, "k": 4}')
echo "$headers" | grep -q "\"x-request-id\":\[\"$RID\"\]" || { echo "router did not echo $RID"; echo "$headers"; exit 1; }
OWNER=$(echo "$headers" | tr -d '\n ' | sed 's/.*"x-backend":\["\([^"]*\)"\].*/\1/')
[ -n "$OWNER" ] || { echo "no X-Backend on the traced response"; exit 1; }
echo "   request $RID served by $OWNER"
"$WORK/obscheck" trace "http://$ROUTER/debug/tracez" -id "$RID" -spans proxy -cover 0.5
"$WORK/obscheck" trace "http://$OWNER/debug/tracez" -id "$RID" -spans queue,batch,score,encode -cover 0.25

echo "== Prometheus expositions round-trip through the strict parser"
"$WORK/obscheck" prom "http://$ROUTER/metricsz?format=prometheus" \
    -require dssddi_router_build_info,dssddi_router_requests_total,dssddi_router_backend_duration_seconds,dssddi_router_fleet_duration_seconds,dssddi_router_replica_reads_total,dssddi_router_replication_lag_seconds,dssddi_router_anti_entropy_syncs_total
"$WORK/obscheck" prom "http://$B0/metricsz?format=prometheus" \
    -require dssddi_build_info,dssddi_requests_total,dssddi_request_duration_seconds,dssddi_cache_hits_total,dssddi_replica_applies_total,dssddi_replication_apply_duration_seconds
"$WORK/obscheck" prom "http://$B1/metricsz?format=prometheus" \
    -require dssddi_build_info,dssddi_request_duration_seconds,dssddi_replica_applies_total

echo "== structured log stream is well-formed JSON events"
# Non-JSON stderr banners aside, every slog line must carry the
# standard fields.
jsonlines=$(grep -c '^{' "$WORK/router.log" || true)
[ "$jsonlines" -ge 1 ] || { echo "router produced no JSON log events"; cat "$WORK/router.log"; exit 1; }
grep '^{' "$WORK/router.log" | while IFS= read -r line; do
    echo "$line" | grep -q '"time":' || { echo "log line missing time: $line"; exit 1; }
    echo "$line" | grep -q '"level":' || { echo "log line missing level: $line"; exit 1; }
    echo "$line" | grep -q '"msg":' || { echo "log line missing msg: $line"; exit 1; }
done

echo "== tracez text view renders on both tiers"
# Capture before grepping: grep -q quits on the first match and would
# SIGPIPE curl mid-body under pipefail on a large page.
page=$(curl -sf "http://$ROUTER/debug/tracez")
echo "$page" | grep -q 'dssddi-router /debug/tracez' || { echo "router tracez text view broken"; exit 1; }
page=$(curl -sf "http://$B0/debug/tracez")
echo "$page" | grep -q 'dssddi-serve /debug/tracez' || { echo "backend tracez text view broken"; exit 1; }

echo "== OK: obs smoke passed"

#!/usr/bin/env bash
# serve-smoke: the train -> snapshot -> serve -> query lifecycle, end
# to end. Trains a tiny model, saves and reloads it, answers a
# suggestion from the snapshot, boots dssddi-serve on an ephemeral
# port, smoke-tests every endpoint (including the patient registry and
# a mid-load hot reload with zero non-2xx responses), and records a
# servebench JSON (BENCH_serve.json) in the repo root. Used by
# `make serve-smoke` and the CI "serve" job.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/dssddi" ./cmd/dssddi
go build -o "$WORK/dssddi-serve" ./cmd/dssddi-serve
go build -o "$WORK/loadgen" ./cmd/loadgen

echo "== train a tiny model and snapshot it"
"$WORK/dssddi" train -patients 70 -ddi-epochs 5 -md-epochs 10 -o "$WORK/model.snap"

echo "== train a second tiny model (same cohort size) for the hot-reload swap"
"$WORK/dssddi" train -patients 70 -seed 2 -ddi-epochs 5 -md-epochs 10 -o "$WORK/model2.snap"

echo "== snapshot metadata"
"$WORK/dssddi" info -m "$WORK/model.snap"

echo "== suggest from the snapshot (no retraining)"
"$WORK/dssddi" suggest -m "$WORK/model.snap" -k 3 >/dev/null

echo "== boot dssddi-serve on an ephemeral port"
"$WORK/dssddi-serve" -m "$WORK/model.snap" -addr 127.0.0.1:0 -addr-file "$WORK/addr.txt" &
SERVER_PID=$!
for _ in $(seq 1 50); do
    [ -s "$WORK/addr.txt" ] && break
    sleep 0.1
done
[ -s "$WORK/addr.txt" ] || { echo "server did not come up"; exit 1; }
ADDR=$(cat "$WORK/addr.txt")
echo "   listening on $ADDR"

echo "== smoke every endpoint"
curl -sf "http://$ADDR/healthz" >/dev/null
curl -sf -X POST "http://$ADDR/v1/suggest" -d '{"patient": 0, "k": 3}' >/dev/null
curl -sf -X POST "http://$ADDR/v1/scores" -d '{"patients": [0, 1]}' >/dev/null
curl -sf -X POST "http://$ADDR/v1/explain" -d '{"patient": 0, "k": 3}' >/dev/null
curl -sf -X POST "http://$ADDR/v1/alerts" -d '{"drugs": [0, 1, 2], "patient": 0}' >/dev/null
curl -sf "http://$ADDR/metricsz" >/dev/null

echo "== patient registry: register, suggest, mutate, suggest, delete"
code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "http://$ADDR/v1/patients/smoke" -d '{"regimen": [0, 1, 2]}')
[ "$code" = "201" ] || { echo "registering a patient returned $code, want 201"; exit 1; }
curl -sf -X POST "http://$ADDR/v1/suggest" -d '{"patient_id": "smoke", "k": 3}' >/dev/null
curl -sf -X PATCH "http://$ADDR/v1/patients/smoke" -d '{"regimen": [0, 3]}' >/dev/null
curl -sf -X POST "http://$ADDR/v1/suggest" -d '{"patient_id": "smoke", "k": 3}' >/dev/null
curl -sf -X GET "http://$ADDR/v1/patients/smoke" >/dev/null
curl -sf -X DELETE "http://$ADDR/v1/patients/smoke" >/dev/null

echo "== status codes: malformed is 400, unknown is 404"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/suggest" -d '{"patient": 1000000}')
[ "$code" = "404" ] || { echo "out-of-range patient returned $code, want 404"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/suggest" -d '{"patient": -1}')
[ "$code" = "400" ] || { echo "negative patient returned $code, want 400"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/suggest" -d '{"patient_id": "smoke"}')
[ "$code" = "404" ] || { echo "deleted registry patient returned $code, want 404"; exit 1; }

echo "== servebench (loadgen, cached path)"
"$WORK/loadgen" -addr "$ADDR" -duration 2s -concurrency 8 -json BENCH_serve.json

echo "== servebench (loadgen, cold path: unique patients, cache bypassed)"
"$WORK/loadgen" -addr "$ADDR" -cold -duration 2s -concurrency 8 -json BENCH_serve.json -append

echo "== servebench (loadgen, online mix) with a hot reload mid-load: zero non-2xx allowed"
"$WORK/loadgen" -addr "$ADDR" -mix -strict -duration 4s -concurrency 8 -json BENCH_serve.json -append &
LOADGEN_PID=$!
sleep 1
curl -sf -X POST "http://$ADDR/v1/admin/reload" -d "{\"path\": \"$WORK/model2.snap\"}" >/dev/null
sleep 1
curl -sf -X POST "http://$ADDR/v1/admin/reload" -d "{\"path\": \"$WORK/model.snap\"}" >/dev/null
wait "$LOADGEN_PID" || { echo "loadgen saw non-2xx responses during the hot reload"; exit 1; }
epoch=$(curl -sf "http://$ADDR/healthz" | sed 's/.*"epoch":\([0-9]*\).*/\1/')
[ "$epoch" = "3" ] || { echo "server epoch is $epoch after two reloads, want 3"; exit 1; }

echo "== OK: serve smoke passed"

#!/usr/bin/env bash
# serve-smoke: the train -> snapshot -> serve -> query lifecycle, end
# to end. Trains a tiny model, saves and reloads it, answers a
# suggestion from the snapshot, boots dssddi-serve on an ephemeral
# port, smoke-tests every endpoint (including the patient registry and
# a mid-load hot reload with zero non-2xx responses), and records a
# servebench JSON (BENCH_serve.json) in the repo root. Used by
# `make serve-smoke` and the CI "serve" job.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
SERVER_PID=""
SERVER32_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$SERVER32_PID" ] && kill "$SERVER32_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/dssddi" ./cmd/dssddi
go build -o "$WORK/dssddi-serve" ./cmd/dssddi-serve
go build -o "$WORK/loadgen" ./cmd/loadgen
go build -o "$WORK/benchdiff" ./cmd/benchdiff

# Width 384 (paper default is 64) so the cold path is dominated by
# decoder arithmetic — the component the f32 SIMD path accelerates and
# the f32-vs-f64 throughput gate below measures. At the default width
# the per-request HTTP/JSON overhead swamps scoring and the quantized
# speedup is real but unmeasurable end to end.
echo "== train a tiny model and snapshot it"
"$WORK/dssddi" train -patients 70 -hidden 384 -ddi-epochs 5 -md-epochs 10 -o "$WORK/model.snap"

echo "== train a second tiny model (same cohort size) for the hot-reload swap"
"$WORK/dssddi" train -patients 70 -hidden 384 -seed 2 -ddi-epochs 5 -md-epochs 10 -o "$WORK/model2.snap"

echo "== snapshot metadata"
"$WORK/dssddi" info -m "$WORK/model.snap"

echo "== suggest from the snapshot (no retraining)"
"$WORK/dssddi" suggest -m "$WORK/model.snap" -k 3 >/dev/null

echo "== boot dssddi-serve on an ephemeral port"
"$WORK/dssddi-serve" -m "$WORK/model.snap" -addr 127.0.0.1:0 -addr-file "$WORK/addr.txt" &
SERVER_PID=$!
for _ in $(seq 1 50); do
    [ -s "$WORK/addr.txt" ] && break
    sleep 0.1
done
[ -s "$WORK/addr.txt" ] || { echo "server did not come up"; exit 1; }
ADDR=$(cat "$WORK/addr.txt")
echo "   listening on $ADDR"

echo "== smoke every endpoint"
curl -sf "http://$ADDR/healthz" >/dev/null
curl -sf -X POST "http://$ADDR/v1/suggest" -d '{"patient": 0, "k": 3}' >/dev/null
curl -sf -X POST "http://$ADDR/v1/scores" -d '{"patients": [0, 1]}' >/dev/null
curl -sf -X POST "http://$ADDR/v1/explain" -d '{"patient": 0, "k": 3}' >/dev/null
curl -sf -X POST "http://$ADDR/v1/alerts" -d '{"drugs": [0, 1, 2], "patient": 0}' >/dev/null
curl -sf "http://$ADDR/metricsz" >/dev/null

echo "== patient registry: register, suggest, mutate, suggest, delete"
code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT "http://$ADDR/v1/patients/smoke" -d '{"regimen": [0, 1, 2]}')
[ "$code" = "201" ] || { echo "registering a patient returned $code, want 201"; exit 1; }
curl -sf -X POST "http://$ADDR/v1/suggest" -d '{"patient_id": "smoke", "k": 3}' >/dev/null
curl -sf -X PATCH "http://$ADDR/v1/patients/smoke" -d '{"regimen": [0, 3]}' >/dev/null
curl -sf -X POST "http://$ADDR/v1/suggest" -d '{"patient_id": "smoke", "k": 3}' >/dev/null
curl -sf -X GET "http://$ADDR/v1/patients/smoke" >/dev/null
curl -sf -X DELETE "http://$ADDR/v1/patients/smoke" >/dev/null

echo "== status codes: malformed is 400, unknown is 404"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/suggest" -d '{"patient": 1000000}')
[ "$code" = "404" ] || { echo "out-of-range patient returned $code, want 404"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/suggest" -d '{"patient": -1}')
[ "$code" = "400" ] || { echo "negative patient returned $code, want 400"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/suggest" -d '{"patient_id": "smoke"}')
[ "$code" = "404" ] || { echo "deleted registry patient returned $code, want 404"; exit 1; }

echo "== servebench (loadgen, cached path)"
"$WORK/loadgen" -addr "$ADDR" -duration 2s -concurrency 8 -json BENCH_serve.json

echo "== servebench (loadgen, cold path: unique patients, cache bypassed)"
"$WORK/loadgen" -addr "$ADDR" -cold -duration 2s -concurrency 8 -json BENCH_serve.json -append

echo "== servebench (loadgen, online mix) with a hot reload mid-load: zero non-2xx allowed"
"$WORK/loadgen" -addr "$ADDR" -mix -strict -duration 4s -concurrency 8 -json BENCH_serve.json -append &
LOADGEN_PID=$!
sleep 1
curl -sf -X POST "http://$ADDR/v1/admin/reload" -d "{\"path\": \"$WORK/model2.snap\"}" >/dev/null
sleep 1
curl -sf -X POST "http://$ADDR/v1/admin/reload" -d "{\"path\": \"$WORK/model.snap\"}" >/dev/null
wait "$LOADGEN_PID" || { echo "loadgen saw non-2xx responses during the hot reload"; exit 1; }
epoch=$(curl -sf "http://$ADDR/healthz" | sed 's/.*"epoch":\([0-9]*\).*/\1/')
[ "$epoch" = "3" ] || { echo "server epoch is $epoch after two reloads, want 3"; exit 1; }

echo "== quantized serving: hot reload to f32, re-measure cached + cold"
curl -sf -X POST "http://$ADDR/v1/admin/reload" -d '{"precision": "f32"}' >/dev/null
prec=$(curl -sf "http://$ADDR/healthz" | sed 's/.*"precision":"\([^"]*\)".*/\1/')
[ "$prec" = "f32" ] || { echo "precision after f32 reload is $prec, want f32"; exit 1; }
"$WORK/loadgen" -addr "$ADDR" -duration 2s -concurrency 8 -entry-suffix -f32 -json BENCH_serve.json -append
"$WORK/loadgen" -addr "$ADDR" -cold -duration 3s -concurrency 8 -entry-suffix -f32 -json BENCH_serve.json -append

echo "== quantized serving: hot reload to int8-experimental, cold pass"
curl -sf -X POST "http://$ADDR/v1/admin/reload" -d '{"precision": "int8-experimental"}' >/dev/null
"$WORK/loadgen" -addr "$ADDR" -cold -duration 2s -concurrency 8 -entry-suffix -int8 -json BENCH_serve.json -append

echo "== re-measure the f64 cold baseline (same process, same conditions as the f32 pass)"
curl -sf -X POST "http://$ADDR/v1/admin/reload" -d '{"precision": "f64"}' >/dev/null
"$WORK/loadgen" -addr "$ADDR" -cold -duration 3s -concurrency 8 -json BENCH_serve.json -append

echo "== -precision boot flag: a fresh server comes up quantized"
"$WORK/dssddi-serve" -m "$WORK/model.snap" -precision f32 -addr 127.0.0.1:0 -addr-file "$WORK/addr32.txt" &
SERVER32_PID=$!
for _ in $(seq 1 50); do
    [ -s "$WORK/addr32.txt" ] && break
    sleep 0.1
done
[ -s "$WORK/addr32.txt" ] || { echo "f32 server did not come up"; exit 1; }
ADDR32=$(cat "$WORK/addr32.txt")
prec=$(curl -sf "http://$ADDR32/healthz" | sed 's/.*"precision":"\([^"]*\)".*/\1/')
[ "$prec" = "f32" ] || { echo "-precision f32 boot reports $prec"; exit 1; }
curl -sf -X POST "http://$ADDR32/v1/suggest" -d '{"patient": 0, "k": 3}' >/dev/null
kill "$SERVER32_PID" 2>/dev/null || true

echo "== characterize f32/int8 divergence vs the f64 oracle into the report"
"$WORK/dssddi" precision -m "$WORK/model.snap" -bench BENCH_serve.json

echo "== gates: f32 cold throughput >= 1.5x f64, f32 accuracy within tolerance"
"$WORK/benchdiff" -scale suggest-cold-f32:suggest-cold:1.5 BENCH_serve.json
"$WORK/benchdiff" -precision-gate BENCH_serve.json

echo "== OK: serve smoke passed"

package dssddi

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"dssddi/internal/dataset"
	"dssddi/internal/ddi"
	"dssddi/internal/graph"
	"dssddi/internal/md"
	"dssddi/internal/nn"
	"dssddi/internal/snapshot"
)

// This file defines snapshot format version 1: the complete field
// layout of a saved System. The low-level encoding (endianness, length
// prefixes, checksum) lives in internal/snapshot; every structural
// change here must bump snapshot.Version and keep a reader for the old
// layout.
//
// Layout, in stream order:
//
//	magic, format version        (internal/snapshot)
//	header: system Config, cohort shape, dataset SHA-256
//	dataset: X, Y, drug features, splits, names, DDI edge list
//	DDI module: config + cached relation embeddings
//	MD module: config, encoder/decoder weights, relation embeddings,
//	           cached drug representations, treatment model
//	CRC32 footer                 (internal/snapshot)

// SnapshotInfo is the cheap-to-read metadata at the head of a
// snapshot: enough to identify a model (and refuse a mismatched one)
// without decoding the weights. DatasetSHA256 is the hex digest of the
// canonical dataset encoding — two snapshots trained on the same data
// carry the same digest regardless of training settings.
type SnapshotInfo struct {
	Version  int    `json:"version"`
	Backbone string `json:"backbone"`
	Hidden   int    `json:"hidden"`
	Seed     int64  `json:"seed"`
	Patients int    `json:"patients"`
	Drugs    int    `json:"drugs"`

	DDIEpochs int     `json:"ddi_epochs"`
	MDEpochs  int     `json:"md_epochs"`
	Delta     float64 `json:"delta"`
	Alpha     float64 `json:"alpha"`

	DatasetSHA256 string `json:"dataset_sha256"`
}

// Save writes the trained system as a versioned, checksummed binary
// snapshot. The stream is deterministic — saving the same system twice
// produces identical bytes — and Load restores a system whose Suggest,
// Scores, Explain and Evaluate output is bitwise identical to this
// one's. Save fails on an untrained system.
func (s *System) Save(w io.Writer) error {
	if err := s.ensureTrained(); err != nil {
		return fmt.Errorf("dssddi: Save: %w", err)
	}
	mdState, err := s.mdModel.ServingState()
	if err != nil {
		return fmt.Errorf("dssddi: Save: %w", err)
	}

	e := snapshot.NewEncoder(w)
	writeHeader(e, s.snapshotInfo())
	writeDataset(e, s.data.ds)

	// DDI module: the config that produced the embeddings plus the
	// cached embedding matrix itself (the module's only inference
	// output).
	dcfg := s.ddiModel.Config
	e.Int(int(dcfg.Backbone))
	e.Int(dcfg.Hidden)
	e.Int(dcfg.Layers)
	e.Int(dcfg.Epochs)
	e.Float(dcfg.LR)
	e.Float(dcfg.ZeroRatio)
	e.Int64(dcfg.Seed)
	e.Matrix(s.ddiModel.Embeddings())

	writeMDState(e, mdState)
	if err := e.Finish(); err != nil {
		return fmt.Errorf("dssddi: Save: %w", err)
	}
	return nil
}

// Load restores a system saved with Save. The returned system is
// trained and immutable in the sense that all its read paths (Suggest,
// Scores, Explain, Evaluate, DrugRelationEmbeddings) are safe for
// unbounded concurrent callers; calling Train on it retrains from
// scratch exactly like a fresh system. Load verifies the stream
// checksum and the dataset identity digest before returning.
func Load(r io.Reader) (*System, error) {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, fmt.Errorf("dssddi: Load: %w", err)
	}
	info := readHeader(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dssddi: Load: reading header: %w", err)
	}

	ds := readDataset(d)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dssddi: Load: reading dataset: %w", err)
	}
	if got := datasetDigest(ds); got != info.DatasetSHA256 {
		return nil, fmt.Errorf("dssddi: Load: dataset digest mismatch (header %s, decoded %s)", info.DatasetSHA256, got)
	}

	dcfg := ddi.Config{
		Backbone:  ddi.Backbone(d.Int()),
		Hidden:    d.Int(),
		Layers:    d.Int(),
		Epochs:    d.Int(),
		LR:        d.Float(),
		ZeroRatio: d.Float(),
		Seed:      d.Int64(),
	}
	emb := d.Matrix()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dssddi: Load: reading DDI module: %w", err)
	}

	mdState := readMDState(d, ds)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dssddi: Load: reading MD module: %w", err)
	}
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("dssddi: Load: %w", err)
	}

	ddiModel, err := ddi.FromEmbeddings(dcfg, emb)
	if err != nil {
		return nil, fmt.Errorf("dssddi: Load: %w", err)
	}
	mdModel, err := md.NewServing(ds, mdState)
	if err != nil {
		return nil, fmt.Errorf("dssddi: Load: %w", err)
	}

	cfg := Config{
		Backbone:  info.Backbone,
		DDIEpochs: info.DDIEpochs,
		MDEpochs:  info.MDEpochs,
		Hidden:    info.Hidden,
		Delta:     info.Delta,
		Alpha:     info.Alpha,
		Seed:      info.Seed,
	}
	backbone, err := parseBackbone(cfg.Backbone)
	if err != nil {
		return nil, fmt.Errorf("dssddi: Load: %w", err)
	}
	return &System{
		cfg:      cfg,
		backbone: backbone,
		data:     &Data{ds: ds, names: ds.DrugNames},
		ddiModel: ddiModel,
		mdModel:  mdModel,
		trained:  true,
	}, nil
}

// ReadSnapshotInfo reads only the snapshot header — model identity
// without the weights. It does not verify the stream checksum (that
// requires reading the whole file); Load does.
func ReadSnapshotInfo(r io.Reader) (SnapshotInfo, error) {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("dssddi: ReadSnapshotInfo: %w", err)
	}
	info := readHeader(d)
	if err := d.Err(); err != nil {
		return SnapshotInfo{}, fmt.Errorf("dssddi: ReadSnapshotInfo: %w", err)
	}
	return info, nil
}

// Data returns the problem instance the system was trained on (nil
// before Train). Loaded systems carry the full instance, so test
// patients, medications and drug names are available to serving code.
func (s *System) Data() *Data { return s.data }

// SnapshotInfo reports the metadata Save would stamp on this system's
// snapshot. It requires a trained system.
func (s *System) SnapshotInfo() (SnapshotInfo, error) {
	if err := s.ensureTrained(); err != nil {
		return SnapshotInfo{}, err
	}
	return s.snapshotInfo(), nil
}

func (s *System) snapshotInfo() SnapshotInfo {
	return SnapshotInfo{
		Version:       snapshot.Version,
		Backbone:      s.cfg.Backbone,
		Hidden:        s.cfg.Hidden,
		Seed:          s.cfg.Seed,
		Patients:      s.data.NumPatients(),
		Drugs:         s.data.NumDrugs(),
		DDIEpochs:     s.cfg.DDIEpochs,
		MDEpochs:      s.cfg.MDEpochs,
		Delta:         s.cfg.Delta,
		Alpha:         s.cfg.Alpha,
		DatasetSHA256: datasetDigest(s.data.ds),
	}
}

func writeHeader(e *snapshot.Encoder, info SnapshotInfo) {
	e.String(info.Backbone)
	e.Int(info.Hidden)
	e.Int64(info.Seed)
	e.Int(info.Patients)
	e.Int(info.Drugs)
	e.Int(info.DDIEpochs)
	e.Int(info.MDEpochs)
	e.Float(info.Delta)
	e.Float(info.Alpha)
	e.String(info.DatasetSHA256)
}

func readHeader(d *snapshot.Decoder) SnapshotInfo {
	return SnapshotInfo{
		Version:       d.Version(),
		Backbone:      d.String(),
		Hidden:        d.Int(),
		Seed:          d.Int64(),
		Patients:      d.Int(),
		Drugs:         d.Int(),
		DDIEpochs:     d.Int(),
		MDEpochs:      d.Int(),
		Delta:         d.Float(),
		Alpha:         d.Float(),
		DatasetSHA256: d.String(),
	}
}

// datasetDigest is the canonical dataset identity: the SHA-256 of the
// deterministic dataset encoding. Save stamps it into the header and
// Load recomputes it from the decoded dataset, so a snapshot whose
// header and payload disagree is rejected.
func datasetDigest(ds *dataset.Dataset) string {
	h := sha256.New()
	e := snapshot.NewRawEncoder(h)
	writeDataset(e, ds)
	if e.Flush() != nil {
		// Writing to a hash cannot fail; a sticky error here means a
		// programming bug, surfaced as a digest no header will match.
		return "invalid"
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeDataset(e *snapshot.Encoder, ds *dataset.Dataset) {
	e.Matrix(ds.X)
	e.Matrix(ds.Y)
	e.Matrix(ds.DrugFeatures)
	e.Ints(ds.Train)
	e.Ints(ds.Val)
	e.Ints(ds.Test)
	e.Strings(ds.DrugNames)
	e.Int(ds.NumClusters)

	el := ds.DDI.Edges()
	e.Int(ds.DDI.N())
	e.Ints(el.U)
	e.Ints(el.V)
	signs := make([]int, len(el.S))
	for i, s := range el.S {
		signs[i] = int(s)
	}
	e.Ints(signs)
}

func readDataset(d *snapshot.Decoder) *dataset.Dataset {
	ds := &dataset.Dataset{
		X:            d.Matrix(),
		Y:            d.Matrix(),
		DrugFeatures: d.Matrix(),
		Train:        d.Ints(),
		Val:          d.Ints(),
		Test:         d.Ints(),
		DrugNames:    d.Strings(),
		NumClusters:  d.Int(),
	}
	n := d.Int()
	u, v, signs := d.Ints(), d.Ints(), d.Ints()
	if d.Err() != nil {
		return ds
	}
	if n < 0 || len(u) != len(v) || len(u) != len(signs) {
		d.Fail(fmt.Errorf("dssddi: corrupt DDI edge list (%d nodes, %d/%d/%d edge columns)", n, len(u), len(v), len(signs)))
		return ds
	}
	g := graph.NewSigned(n)
	for i := range u {
		if u[i] < 0 || u[i] >= n || v[i] < 0 || v[i] >= n || u[i] == v[i] {
			d.Fail(fmt.Errorf("dssddi: corrupt DDI edge (%d,%d) on %d nodes", u[i], v[i], n))
			return ds
		}
		g.SetEdge(u[i], v[i], graph.Sign(signs[i]))
	}
	ds.DDI = g
	return ds
}

func writeMDState(e *snapshot.Encoder, st md.ServingState) {
	cfg := st.Config
	e.Int(cfg.Hidden)
	e.Int(cfg.PropLayers)
	e.Int(cfg.Epochs)
	e.Float(cfg.LR)
	e.Float(cfg.Delta)
	e.Float(cfg.WeightDecay)
	e.Int64(cfg.Seed)
	e.Float(cfg.CF.GammaPQuantile)
	e.Float(cfg.CF.GammaDQuantile)
	e.Int(cfg.CF.Shortlist)
	e.Bool(cfg.UseDDI)
	e.Bool(cfg.UseCounterfactual)
	e.Bool(cfg.SelectOnVal)
	e.Int(cfg.ValEvery)

	writeMLP(e, st.FcPat)
	writeLinear(e, st.FcDrug)
	e.Bool(st.RelProj != nil)
	if st.RelProj != nil {
		writeLinear(e, st.RelProj)
	}
	writeMLP(e, st.Decoder)
	e.Matrix(st.RelEmb)
	e.Matrix(st.DrugCache)

	tr := st.Treatment
	e.Matrix(tr.T)
	e.Ints(tr.Assign)
	e.Matrix(tr.Centroids)
	sets := tr.ClusterSets()
	e.Int(len(sets))
	for _, set := range sets {
		e.Ints(set)
	}
}

func readMDState(d *snapshot.Decoder, ds *dataset.Dataset) md.ServingState {
	var cfg md.Config
	cfg.Hidden = d.Int()
	cfg.PropLayers = d.Int()
	cfg.Epochs = d.Int()
	cfg.LR = d.Float()
	cfg.Delta = d.Float()
	cfg.WeightDecay = d.Float()
	cfg.Seed = d.Int64()
	cfg.CF.GammaPQuantile = d.Float()
	cfg.CF.GammaDQuantile = d.Float()
	cfg.CF.Shortlist = d.Int()
	cfg.UseDDI = d.Bool()
	cfg.UseCounterfactual = d.Bool()
	cfg.SelectOnVal = d.Bool()
	cfg.ValEvery = d.Int()

	st := md.ServingState{Config: cfg}
	st.FcPat = readMLP(d)
	st.FcDrug = readLinear(d)
	if d.Bool() {
		st.RelProj = readLinear(d)
	}
	st.Decoder = readMLP(d)
	st.RelEmb = d.Matrix()
	st.DrugCache = d.Matrix()

	T := d.Matrix()
	assign := d.Ints()
	centroids := d.Matrix()
	nSets := d.Int()
	if d.Err() != nil {
		return st
	}
	if nSets < 0 || nSets > 1<<20 {
		d.Fail(fmt.Errorf("dssddi: corrupt treatment cluster count %d", nSets))
		return st
	}
	sets := make([][]int, nSets)
	for i := range sets {
		sets[i] = d.Ints()
	}
	if d.Err() != nil || ds.DDI == nil {
		return st
	}
	for _, set := range sets {
		for _, v := range set {
			if v < 0 || v >= ds.DDI.N() {
				d.Fail(fmt.Errorf("dssddi: corrupt treatment cluster drug %d on %d drugs", v, ds.DDI.N()))
				return st
			}
		}
	}
	st.Treatment = md.RestoreTreatment(T, assign, centroids, sets, ds.DDI)
	return st
}

// writeMLP serializes an MLP's layer weights and activations. The
// MLPs in the MD module never use BatchNorm; format version 1 encodes
// that assumption and Save refuses anything else rather than silently
// dropping state.
func writeMLP(e *snapshot.Encoder, m *nn.MLP) {
	for _, bn := range m.Norms {
		if bn != nil {
			e.Fail(fmt.Errorf("dssddi: snapshot v1 cannot serialize BatchNorm layers"))
			return
		}
	}
	e.Int(len(m.Layers))
	for _, l := range m.Layers {
		writeLinear(e, l)
	}
	e.Int(int(m.Act))
	e.Int(int(m.OutAct))
}

func readMLP(d *snapshot.Decoder) *nn.MLP {
	n := d.Int()
	if d.Err() != nil {
		return nil
	}
	if n <= 0 || n > 1<<10 {
		d.Fail(fmt.Errorf("dssddi: corrupt MLP layer count %d", n))
		return nil
	}
	m := &nn.MLP{Layers: make([]*nn.Linear, n), Norms: make([]*nn.BatchNorm, n)}
	for i := range m.Layers {
		m.Layers[i] = readLinear(d)
	}
	m.Act = nn.Activation(d.Int())
	m.OutAct = nn.Activation(d.Int())
	return m
}

func writeLinear(e *snapshot.Encoder, l *nn.Linear) {
	e.Matrix(l.W)
	e.Matrix(l.B)
}

func readLinear(d *snapshot.Decoder) *nn.Linear {
	w, b := d.Matrix(), d.Matrix()
	if d.Err() != nil {
		return nil
	}
	if w == nil || b == nil || b.Rows() != 1 || w.Cols() != b.Cols() {
		d.Fail(fmt.Errorf("dssddi: corrupt linear layer weights"))
		return nil
	}
	return &nn.Linear{W: w, B: b}
}

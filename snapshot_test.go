package dssddi

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
)

var (
	snapSysOnce sync.Once
	snapSys     *System
	snapData    *Data
	snapBytes   []byte
)

// snapshotSystem trains one small system and saves it once, shared by
// every snapshot test.
func snapshotSystem(t *testing.T) (*System, *Data, []byte) {
	t.Helper()
	snapSysOnce.Do(func() {
		data := GenerateChronic(7, 60, 50)
		cfg := DefaultConfig()
		cfg.DDIEpochs = 20
		cfg.MDEpochs = 40
		cfg.Hidden = 16
		sys := New(cfg)
		if err := sys.Train(data); err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := sys.Save(&buf); err != nil {
			panic(err)
		}
		snapSys, snapData, snapBytes = sys, data, buf.Bytes()
	})
	if snapSys == nil {
		t.Fatal("shared snapshot system failed to train")
	}
	return snapSys, snapData, snapBytes
}

// sameScores asserts bitwise equality of two score row sets.
func sameScores(t *testing.T, label string, a, b [][]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d rows", label, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: row %d width %d vs %d", label, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("%s: row %d col %d: %v vs %v (not bitwise identical)", label, i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestSnapshotRoundTripExact(t *testing.T) {
	sys, data, raw := snapshotSystem(t)
	loaded, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	patients := data.TestPatients()
	if len(patients) > 8 {
		patients = patients[:8]
	}
	wantScores, err := sys.Scores(patients)
	if err != nil {
		t.Fatal(err)
	}
	gotScores, err := loaded.Scores(patients)
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, "Scores", wantScores, gotScores)

	p := patients[0]
	want, err := sys.Suggest(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Suggest(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", got) {
		t.Fatalf("Suggest diverged:\n  original %+v\n  loaded   %+v", want, got)
	}

	wantEval, err := sys.Evaluate(patients, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	gotEval, err := loaded.Evaluate(patients, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantEval {
		if wantEval[i] != gotEval[i] {
			t.Fatalf("Evaluate diverged at k=%d: %+v vs %+v", wantEval[i].K, wantEval[i], gotEval[i])
		}
	}

	wantEx, err := sys.ExplainSuggestions(want)
	if err != nil {
		t.Fatal(err)
	}
	gotEx, err := loaded.ExplainSuggestions(got)
	if err != nil {
		t.Fatal(err)
	}
	if wantEx.Text != gotEx.Text || wantEx.SS != gotEx.SS {
		t.Fatalf("Explain diverged:\n%q\nvs\n%q", wantEx.Text, gotEx.Text)
	}

	wantEmb, err := sys.DrugRelationEmbeddings()
	if err != nil {
		t.Fatal(err)
	}
	gotEmb, err := loaded.DrugRelationEmbeddings()
	if err != nil {
		t.Fatal(err)
	}
	sameScores(t, "DrugRelationEmbeddings", wantEmb, gotEmb)

	// A loaded system's own snapshot must be byte-identical to the one
	// it came from (deterministic re-encode of identical state).
	var again bytes.Buffer
	if err := loaded.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Fatal("Save(Load(snapshot)) produced different bytes")
	}
}

func TestSnapshotSaveDeterministic(t *testing.T) {
	sys, _, raw := snapshotSystem(t)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf.Bytes()) {
		t.Fatal("saving the same system twice produced different bytes")
	}
}

func TestSaveUntrainedErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := New(DefaultConfig()).Save(&buf); err == nil {
		t.Fatal("Save on an untrained system must error")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	_, _, raw := snapshotSystem(t)
	for _, off := range []int{len(raw) / 3, len(raw) / 2, len(raw) - 8} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0x20
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at offset %d must not load cleanly", off)
		}
	}
	if _, err := Load(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated snapshot must not load")
	}
	if _, err := Load(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("foreign bytes must not load")
	}
}

func TestReadSnapshotInfo(t *testing.T) {
	sys, data, raw := snapshotSystem(t)
	info, err := ReadSnapshotInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Backbone != "SGCN" || info.Hidden != 16 || info.Version != 1 {
		t.Fatalf("info drifted: %+v", info)
	}
	if info.Patients != data.NumPatients() || info.Drugs != data.NumDrugs() {
		t.Fatalf("cohort shape drifted: %+v", info)
	}
	if len(info.DatasetSHA256) != 64 {
		t.Fatalf("dataset digest %q is not a sha256 hex string", info.DatasetSHA256)
	}
	want, err := sys.SnapshotInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info != want {
		t.Fatalf("header info %+v != live info %+v", info, want)
	}
}

// TestConcurrentServingHammer drives many goroutines through every
// read path of one loaded snapshot and asserts each result is bitwise
// identical to the serial baseline. Run under -race (CI does) this is
// the proof that the post-training inference path is read-only.
func TestConcurrentServingHammer(t *testing.T) {
	sys, data, raw := snapshotSystem(t)
	loaded, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	patients := data.TestPatients()
	if len(patients) > 6 {
		patients = patients[:6]
	}
	baseScores, err := sys.Scores(patients)
	if err != nil {
		t.Fatal(err)
	}
	baseSugg := make([][]Suggestion, len(patients))
	baseExpl := make([]string, len(patients))
	for i, p := range patients {
		if baseSugg[i], err = sys.Suggest(p, 3); err != nil {
			t.Fatal(err)
		}
		ex, err := sys.ExplainSuggestions(baseSugg[i])
		if err != nil {
			t.Fatal(err)
		}
		baseExpl[i] = ex.Text
	}

	const goroutines = 16
	const iters = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(patients)
				p := patients[i]
				switch (g + it) % 3 {
				case 0:
					rows, err := loaded.Scores([]int{p})
					if err != nil {
						errs <- err
						return
					}
					for j, v := range rows[0] {
						if v != baseScores[i][j] {
							errs <- fmt.Errorf("concurrent Scores diverged for patient %d col %d", p, j)
							return
						}
					}
				case 1:
					sg, err := loaded.Suggest(p, 3)
					if err != nil {
						errs <- err
						return
					}
					if fmt.Sprintf("%+v", sg) != fmt.Sprintf("%+v", baseSugg[i]) {
						errs <- fmt.Errorf("concurrent Suggest diverged for patient %d", p)
						return
					}
				default:
					ex, err := loaded.ExplainSuggestions(baseSugg[i])
					if err != nil {
						errs <- err
						return
					}
					if ex.Text != baseExpl[i] {
						errs <- fmt.Errorf("concurrent Explain diverged for patient %d", p)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestGoldenV1SnapshotLoads is the forward-compatibility gate: a
// committed format-version-1 snapshot must keep loading (and serving —
// including the inductive patient layer, which derives all of its
// state from what v1 already persists) in every future build. If the
// format ever has to bump, this test must be updated to assert a
// clear, versioned rejection instead of silent corruption.
func TestGoldenV1SnapshotLoads(t *testing.T) {
	f, err := os.Open("testdata/golden-v1.snap")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	info, err := ReadSnapshotInfo(f)
	if err != nil {
		t.Fatalf("reading golden snapshot header: %v", err)
	}
	if info.Version != 1 {
		t.Fatalf("golden fixture declares version %d, want 1", info.Version)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	sys, err := Load(f)
	if err != nil {
		t.Fatalf("golden v1 snapshot no longer loads — the format drifted without a version bump: %v", err)
	}

	// The restored system must serve end to end: transductive suggest,
	// inductive profile suggest, and the bitwise agreement between the
	// two for an observed patient.
	data := sys.Data()
	p := data.TrainPatients()[0]
	want, err := sys.Suggest(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.SuggestFor(PatientProfile{Regimen: data.Medications(p), Features: data.Features(p)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].DrugID != want[i].DrugID || got[i].Score != want[i].Score {
			t.Fatalf("inductive path diverged on the golden model: %+v vs %+v", got[i], want[i])
		}
	}
	if _, err := sys.SuggestFor(PatientProfile{Regimen: []int{0, 1}}, 3); err != nil {
		t.Fatalf("regimen-only profile on the golden model: %v", err)
	}
}
